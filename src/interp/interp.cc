#include "src/interp/interp.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/codegen/native.h"
#include "src/ir/functor.h"
#include "src/ir/intrin_table.h"
#include "src/ir/printer.h"
#include "src/ir/simplify.h"
#include "src/support/float16.h"
#include "src/vm/vm.h"

namespace tvmcpp {

int InterpElementBytes(DataType t) {
  if (t.is_float()) {
    return 4;  // float16 widened to float
  }
  if (t.bits() <= 8) {
    return 1;
  }
  if (t.bits() <= 32) {
    return 4;
  }
  return 8;
}

namespace {

// Scalar runtime value.
struct Value {
  double f = 0;
  int64_t i = 0;
  bool is_float = false;

  static Value Int(int64_t v) { return Value{0, v, false}; }
  static Value Float(double v) { return Value{v, 0, true}; }
  double AsF() const { return is_float ? f : static_cast<double>(i); }
  int64_t AsI() const { return is_float ? static_cast<int64_t>(f) : i; }
  bool AsBool() const { return is_float ? f != 0 : i != 0; }
};

struct BufferState {
  void* data = nullptr;
  DataType dtype;
  int64_t num_elements = 0;
  std::vector<char> owned;  // storage for interpreter-allocated buffers
};

class Interp {
 public:
  void Bind(const VarNode* v, Value value) { env_[v] = value; }
  void BindBuffer(const VarNode* v, BufferState state) { buffers_[v] = std::move(state); }

  void Exec(const Stmt& s) {
    if (s == nullptr) {
      return;
    }
    switch (s->kind) {
      case StmtKind::kLetStmt: {
        const auto* n = static_cast<const LetStmtNode*>(s.get());
        env_[n->var.get()] = Eval(n->value);
        Exec(n->body);
        break;
      }
      case StmtKind::kAttrStmt:
        Exec(static_cast<const AttrStmtNode*>(s.get())->body);
        break;
      case StmtKind::kAssert: {
        const auto* n = static_cast<const AssertStmtNode*>(s.get());
        CHECK(Eval(n->condition).AsBool()) << "assert failed: " << n->message;
        Exec(n->body);
        break;
      }
      case StmtKind::kStore: {
        const auto* n = static_cast<const StoreNode*>(s.get());
        int lanes = std::max(n->value->dtype.lanes(), n->index->dtype.lanes());
        if (lanes > 1) {
          // Vector store: per lane, predicate -> index -> value, exactly the scalar
          // evaluation (and trap) order applied lane by lane.
          BufferState& buf = GetBuffer(n->buffer_var.get());
          for (int lane = 0; lane < lanes; ++lane) {
            if (n->predicate != nullptr && !Eval(n->predicate, lane).AsBool()) {
              continue;
            }
            int64_t idx = Eval(n->index, lane).AsI();
            WriteElem(buf, idx, Eval(n->value, lane));
          }
          break;
        }
        if (n->predicate != nullptr && !Eval(n->predicate).AsBool()) {
          break;
        }
        BufferState& buf = GetBuffer(n->buffer_var.get());
        int64_t idx = Eval(n->index).AsI();
        WriteElem(buf, idx, Eval(n->value));
        break;
      }
      case StmtKind::kAllocate: {
        const auto* n = static_cast<const AllocateNode*>(s.get());
        int64_t size = n->dtype.lanes();  // lanes > 1: widened scalar storage
        for (const Expr& e : n->extents) {
          size *= Eval(e).AsI();
        }
        BufferState state;
        state.dtype = n->dtype.element_of();
        state.num_elements = size;
        state.owned.assign(static_cast<size_t>(size * InterpElementBytes(n->dtype)), 0);
        state.data = state.owned.data();
        buffers_[n->buffer_var.get()] = std::move(state);
        Exec(n->body);
        buffers_.erase(n->buffer_var.get());
        break;
      }
      case StmtKind::kFor: {
        const auto* n = static_cast<const ForNode*>(s.get());
        int64_t min_v = Eval(n->min).AsI();
        int64_t extent = Eval(n->extent).AsI();
        for (int64_t v = min_v; v < min_v + extent; ++v) {
          env_[n->loop_var.get()] = Value::Int(v);
          Exec(n->body);
        }
        break;
      }
      case StmtKind::kIfThenElse: {
        const auto* n = static_cast<const IfThenElseNode*>(s.get());
        if (Eval(n->condition).AsBool()) {
          Exec(n->then_case);
        } else if (n->else_case != nullptr) {
          Exec(n->else_case);
        }
        break;
      }
      case StmtKind::kSeq: {
        const auto* n = static_cast<const SeqStmtNode*>(s.get());
        for (const Stmt& st : n->seq) {
          Exec(st);
        }
        break;
      }
      case StmtKind::kEvaluate:
        Eval(static_cast<const EvaluateNode*>(s.get())->value);
        break;
    }
  }

  // Evaluates `e`; for vector expressions `lane` selects the lane (Ramp expands to
  // base + lane*stride, Broadcast ignores the lane, vector loads index per lane).
  // Scalar subexpressions are lane-invariant, so threading `lane` through every
  // recursion gives exact lane-wise reference semantics.
  Value Eval(const Expr& e, int lane = 0) {
    switch (e->kind) {
      case ExprKind::kIntImm:
        return Value::Int(static_cast<const IntImmNode*>(e.get())->value);
      case ExprKind::kFloatImm:
        return Value::Float(static_cast<const FloatImmNode*>(e.get())->value);
      case ExprKind::kStringImm:
        return Value::Int(0);
      case ExprKind::kVar: {
        auto it = env_.find(static_cast<const VarNode*>(e.get()));
        CHECK(it != env_.end()) << "unbound variable "
                                << static_cast<const VarNode*>(e.get())->name;
        return it->second;
      }
      case ExprKind::kRamp: {
        const auto* n = static_cast<const RampNode*>(e.get());
        return Value::Int(Eval(n->base, lane).AsI() +
                          static_cast<int64_t>(lane) * Eval(n->stride, lane).AsI());
      }
      case ExprKind::kBroadcast:
        return Eval(static_cast<const BroadcastNode*>(e.get())->value, lane);
      case ExprKind::kCast: {
        const auto* n = static_cast<const CastNode*>(e.get());
        Value v = Eval(n->value, lane);
        if (n->dtype.is_float()) {
          double d = v.AsF();
          if (n->dtype.bits() == 16) {
            d = static_cast<double>(QuantizeFloat16(static_cast<float>(d)));
          }
          return Value::Float(d);
        }
        int64_t i = v.AsI();
        if (n->dtype.bits() < 64 && !n->dtype.is_handle()) {
          int64_t mask_bits = n->dtype.bits();
          if (mask_bits < 64) {
            int64_t mod = int64_t{1} << mask_bits;
            i = ((i % mod) + mod) % mod;
            if (n->dtype.is_int() && i >= (mod >> 1)) {
              i -= mod;
            }
          }
        }
        return Value::Int(i);
      }
      case ExprKind::kNot:
        return Value::Int(
            Eval(static_cast<const NotNode*>(e.get())->a, lane).AsBool() ? 0 : 1);
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        return Eval(n->condition, lane).AsBool() ? Eval(n->true_value, lane)
                                                 : Eval(n->false_value, lane);
      }
      case ExprKind::kLoad: {
        const auto* n = static_cast<const LoadNode*>(e.get());
        if (n->predicate != nullptr && !Eval(n->predicate, lane).AsBool()) {
          return n->dtype.is_float() ? Value::Float(0) : Value::Int(0);
        }
        BufferState& buf = GetBuffer(n->buffer_var.get());
        return ReadElem(buf, Eval(n->index, lane).AsI());
      }
      case ExprKind::kLet: {
        const auto* n = static_cast<const LetNode*>(e.get());
        env_[n->var.get()] = Eval(n->value, lane);
        return Eval(n->body, lane);
      }
      case ExprKind::kCall:
        return EvalCall(static_cast<const CallNode*>(e.get()), lane);
      default: {
        const auto* b = dynamic_cast<const BinaryNode*>(e.get());
        CHECK(b != nullptr) << "interpreter cannot evaluate " << ToString(e);
        return EvalBinary(e->kind, Eval(b->a, lane), Eval(b->b, lane), e->dtype);
      }
    }
  }

 private:
  BufferState& GetBuffer(const VarNode* v) {
    auto it = buffers_.find(v);
    CHECK(it != buffers_.end()) << "unbound buffer " << v->name;
    return it->second;
  }

  static Value ReadElem(const BufferState& buf, int64_t idx) {
    CHECK_GE(idx, 0) << "buffer underflow";
    CHECK_LT(idx, buf.num_elements) << "buffer overflow";
    if (buf.dtype.is_float()) {
      return Value::Float(static_cast<const float*>(buf.data)[idx]);
    }
    int bytes = InterpElementBytes(buf.dtype);
    if (bytes == 1) {
      return Value::Int(static_cast<const int8_t*>(buf.data)[idx]);
    }
    if (bytes == 4) {
      return Value::Int(static_cast<const int32_t*>(buf.data)[idx]);
    }
    return Value::Int(static_cast<const int64_t*>(buf.data)[idx]);
  }

  static void WriteElem(BufferState& buf, int64_t idx, const Value& v) {
    CHECK_GE(idx, 0) << "buffer underflow";
    CHECK_LT(idx, buf.num_elements) << "buffer overflow";
    if (buf.dtype.is_float()) {
      float f = static_cast<float>(v.AsF());
      if (buf.dtype.bits() == 16) {
        f = QuantizeFloat16(f);  // round through the half-precision grid
      }
      static_cast<float*>(buf.data)[idx] = f;
      return;
    }
    int bytes = InterpElementBytes(buf.dtype);
    if (bytes == 1) {
      static_cast<int8_t*>(buf.data)[idx] = static_cast<int8_t>(v.AsI());
    } else if (bytes == 4) {
      static_cast<int32_t*>(buf.data)[idx] = static_cast<int32_t>(v.AsI());
    } else {
      static_cast<int64_t*>(buf.data)[idx] = v.AsI();
    }
  }

  static Value EvalBinary(ExprKind kind, const Value& a, const Value& b, DataType t) {
    bool fl = a.is_float || b.is_float;
    switch (kind) {
      case ExprKind::kAdd:
        return fl ? Value::Float(a.AsF() + b.AsF()) : Value::Int(a.i + b.i);
      case ExprKind::kSub:
        return fl ? Value::Float(a.AsF() - b.AsF()) : Value::Int(a.i - b.i);
      case ExprKind::kMul:
        return fl ? Value::Float(a.AsF() * b.AsF()) : Value::Int(a.i * b.i);
      case ExprKind::kDiv:
        return fl ? Value::Float(a.AsF() / b.AsF()) : Value::Int(FloorDiv(a.i, b.i));
      case ExprKind::kMod:
        return Value::Int(FloorMod(a.AsI(), b.AsI()));
      case ExprKind::kMin:
        return fl ? Value::Float(std::min(a.AsF(), b.AsF())) : Value::Int(std::min(a.i, b.i));
      case ExprKind::kMax:
        return fl ? Value::Float(std::max(a.AsF(), b.AsF())) : Value::Int(std::max(a.i, b.i));
      case ExprKind::kEQ:
        return Value::Int(fl ? a.AsF() == b.AsF() : a.i == b.i);
      case ExprKind::kNE:
        return Value::Int(fl ? a.AsF() != b.AsF() : a.i != b.i);
      case ExprKind::kLT:
        return Value::Int(fl ? a.AsF() < b.AsF() : a.i < b.i);
      case ExprKind::kLE:
        return Value::Int(fl ? a.AsF() <= b.AsF() : a.i <= b.i);
      case ExprKind::kGT:
        return Value::Int(fl ? a.AsF() > b.AsF() : a.i > b.i);
      case ExprKind::kGE:
        return Value::Int(fl ? a.AsF() >= b.AsF() : a.i >= b.i);
      case ExprKind::kAnd:
        return Value::Int(a.AsBool() && b.AsBool());
      case ExprKind::kOr:
        return Value::Int(a.AsBool() || b.AsBool());
      default:
        LOG(FATAL) << "bad binary kind";
    }
  }

  Value EvalCall(const CallNode* n, int lane = 0) {
    const std::string& name = n->name;
    if (name == "if_then_else") {
      return Eval(n->args[0], lane).AsBool() ? Eval(n->args[1], lane)
                                             : Eval(n->args[2], lane);
    }
    UnaryMathFn fn;
    if (LookupUnaryMathFn(name, &fn)) {
      return Value::Float(EvalUnaryMathFn(fn, Eval(n->args[0], lane).AsF()));
    }
    if (name == "popcount") {
      return Value::Int(
          __builtin_popcountll(static_cast<uint64_t>(Eval(n->args[0], lane).AsI())));
    }
    if (name == kSyncIntrin || name == kPushDepIntrin || name == kPopDepIntrin) {
      return Value::Int(0);  // synchronization: no-op under serial execution
    }
    if (ExecTensorIntrin(n)) {
      return Value::Int(0);
    }
    LOG(FATAL) << "interpreter: unknown call " << name;
  }

  // Generic tensor-intrinsic execution over the shared name -> category table
  // (src/ir/intrin_table.h; the bytecode VM compiles from the same table).
  bool ExecTensorIntrin(const CallNode* n) {
    const TensorIntrinInfo* info = LookupTensorIntrin(n->name);
    if (info == nullptr) {
      return false;
    }
    using Category = TensorIntrinCategory;
    Category cat = info->category;
    int num_buffers = info->num_buffers;
    int total = static_cast<int>(n->args.size());
    int nt;
    CHECK(DecodeTensorIntrinArity(num_buffers, total, &nt))
        << "bad intrinsic arity for " << n->name;

    struct Access {
      BufferState* buf;
      int64_t base;
      std::vector<int64_t> strides;
    };
    std::vector<Access> acc;
    int pos = 0;
    for (int b = 0; b < num_buffers; ++b) {
      Access a;
      CHECK(n->args[pos]->kind == ExprKind::kVar);
      a.buf = &GetBuffer(static_cast<const VarNode*>(n->args[pos].get()));
      ++pos;
      a.base = Eval(n->args[pos++]).AsI();
      for (int d = 0; d < nt; ++d) {
        a.strides.push_back(Eval(n->args[pos++]).AsI());
      }
      acc.push_back(std::move(a));
    }
    std::vector<int64_t> extents;
    for (int d = 0; d < nt; ++d) {
      extents.push_back(Eval(n->args[pos++]).AsI());
    }
    // Iterate the full tensorized domain.
    std::vector<int64_t> idx(static_cast<size_t>(nt), 0);
    auto offset = [&](const Access& a) {
      int64_t off = a.base;
      for (int d = 0; d < nt; ++d) {
        off += idx[static_cast<size_t>(d)] * a.strides[static_cast<size_t>(d)];
      }
      return off;
    };
    bool done = nt == 0;
    bool ran_scalar = false;
    do {
      switch (cat) {
        case Category::kFill:
          WriteElem(*acc[0].buf, offset(acc[0]),
                    acc[0].buf->dtype.is_float() ? Value::Float(0) : Value::Int(0));
          break;
        case Category::kCopy:
          WriteElem(*acc[0].buf, offset(acc[0]), ReadElem(*acc[1].buf, offset(acc[1])));
          break;
        case Category::kMac: {
          Value out = ReadElem(*acc[0].buf, offset(acc[0]));
          Value a = ReadElem(*acc[1].buf, offset(acc[1]));
          Value b = ReadElem(*acc[2].buf, offset(acc[2]));
          Value r = out.is_float || a.is_float || b.is_float
                        ? Value::Float(out.AsF() + a.AsF() * b.AsF())
                        : Value::Int(out.i + a.i * b.i);
          WriteElem(*acc[0].buf, offset(acc[0]), r);
          break;
        }
      }
      ran_scalar = true;
      // Advance the multi-index.
      int d = nt - 1;
      while (d >= 0) {
        if (++idx[static_cast<size_t>(d)] < extents[static_cast<size_t>(d)]) {
          break;
        }
        idx[static_cast<size_t>(d)] = 0;
        --d;
      }
      done = d < 0;
    } while (!done);
    (void)ran_scalar;
    return true;
  }

  std::unordered_map<const VarNode*, Value> env_;
  std::unordered_map<const VarNode*, BufferState> buffers_;
};

}  // namespace

void RunLoweredInterp(const LoweredFunc& func, const std::vector<BufferBinding>& args) {
  CHECK_EQ(args.size(), func.args.size()) << "argument count mismatch for " << func.name;
  Stmt body = func.body;
  if (HasThreadIdxBinding(body)) {
    // Cooperative (barrier-synchronized) programs need block-synchronous serialization.
    body = SerializeThreadBlocks(body);
  }
  Interp interp;
  for (size_t i = 0; i < args.size(); ++i) {
    BufferState state;
    state.data = args[i].data;
    state.dtype = args[i].dtype;
    state.num_elements = args[i].num_elements;
    interp.BindBuffer(func.args[i].var.get(), std::move(state));
  }
  interp.Exec(body);
}

namespace {

// Atomic so concurrent serving threads reading the engine while a test or tool flips
// it (SetExecEngine) stay race-free; each Run() call observes one coherent value.
std::atomic<ExecEngine>& EngineSlot() {
  static std::atomic<ExecEngine> engine = [] {
    const char* s = std::getenv("TVMCPP_ENGINE");
    if (s != nullptr && std::string(s) == "interp") {
      return ExecEngine::kInterp;
    }
    if (s != nullptr && std::string(s) == "native") {
      return ExecEngine::kNative;
    }
    return ExecEngine::kVm;
  }();
  return engine;
}

}  // namespace

void SetExecEngine(ExecEngine engine) {
  EngineSlot().store(engine, std::memory_order_relaxed);
}
ExecEngine GetExecEngine() { return EngineSlot().load(std::memory_order_relaxed); }

void RunLowered(const LoweredFunc& func, const std::vector<BufferBinding>& args) {
  ExecEngine engine = GetExecEngine();
  if (engine == ExecEngine::kNative) {
    if (codegen::RunLoweredNative(func, args)) {
      return;
    }
    // Native emit/compile failure: down-tier to the VM. Counted (and fatal under
    // TVMCPP_VM_STRICT=1) like any other silent engine downgrade.
    vm::NoteFallback(func.name);
  }
  if (engine != ExecEngine::kInterp) {
    if (vm::RunLoweredVM(func, args)) {
      return;
    }
    // Silent engine downgrades are invisible to callers; count them, and fail hard
    // under TVMCPP_VM_STRICT=1 so coverage regressions surface in tests.
    vm::NoteFallback(func.name);
  }
  RunLoweredInterp(func, args);
}

}  // namespace tvmcpp
