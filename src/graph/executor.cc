#include "src/graph/executor.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/autotune/cache.h"
#include "src/sim/machine.h"
#include "src/support/failpoint.h"

namespace tvmcpp {
namespace graph {

CompiledGraph::CompiledGraph(Graph g, Target target, CompileOptions options)
    : graph_(std::move(g)), target_(std::move(target)), options_(options) {
  for (const Node& n : graph_.nodes()) {
    name_to_node_[n.name] = n.id;
  }
  Compile();
}

int CompiledGraph::NodeIdOf(const std::string& name) const {
  auto it = name_to_node_.find(name);
  CHECK(it != name_to_node_.end()) << "no node named " << name;
  return it->second;
}

topi::OpWorkload CompiledGraph::WorkloadOf(const Node& master) const {
  topi::OpWorkload wl;
  wl.kind = master.op;
  const Node& data = graph_.node(master.inputs[0]);
  if (master.op == "dense") {
    wl.n = static_cast<int>(data.shape[0]);
    wl.k = static_cast<int>(data.shape[1]);
    wl.oc = static_cast<int>(master.shape[1]);
    return wl;
  }
  if (master.op == "sparse_dense") {
    wl.n = static_cast<int>(data.shape[0]);
    wl.k = static_cast<int>(data.shape[1]);
    wl.oc = static_cast<int>(master.shape[1]);
    wl.nnz = master.attrs.count("nnz") ? master.attrs.at("nnz") : 0;
    wl.max_row_nnz =
        master.attrs.count("max_row_nnz") ? master.attrs.at("max_row_nnz") : 0;
    return wl;
  }
  const Node& kernel = graph_.node(master.inputs[1]);
  wl.n = static_cast<int>(data.shape[0]);
  wl.ic = static_cast<int>(data.shape[1]);
  wl.h = static_cast<int>(data.shape[2]);
  wl.w = static_cast<int>(data.shape[3]);
  wl.oc = static_cast<int>(master.shape[1]);
  wl.k = static_cast<int>(kernel.shape[2]);
  wl.stride = static_cast<int>(master.attrs.count("stride") ? master.attrs.at("stride") : 1);
  wl.pad = static_cast<int>(master.attrs.count("pad") ? master.attrs.at("pad") : 0);
  return wl;
}

void CompiledGraph::Compile() {
  if (options_.enable_layout) {
    AlterLayout(&graph_, target_);
  }
  groups_ = FuseOps(graph_, options_.enable_fusion);
  plan_ = PlanMemory(graph_, groups_);

  for (const FusedGroup& grp : groups_) {
    std::unordered_set<int> in_group(grp.nodes.begin(), grp.nodes.end());
    // External inputs of the group, in first-use order.
    std::vector<int> externals;
    auto add_external = [&](int id) {
      if (std::find(externals.begin(), externals.end(), id) == externals.end()) {
        externals.push_back(id);
      }
    };
    for (int id : grp.nodes) {
      for (int in : graph_.node(id).inputs) {
        if (!in_group.count(in)) {
          add_external(in);
        }
      }
    }
    // Build te tensors for the group.
    std::unordered_map<int, Tensor> tensor_of;
    std::vector<Tensor> arg_tensors;
    for (int id : externals) {
      const Node& n = graph_.node(id);
      std::vector<Expr> shape;
      for (int64_t d : n.shape) {
        shape.push_back(make_int(d));
      }
      Tensor t = placeholder(shape, n.dtype, n.name);
      tensor_of[id] = t;
      arg_tensors.push_back(t);
    }
    Tensor master_tensor;
    for (int id : grp.nodes) {
      const Node& n = graph_.node(id);
      std::vector<Tensor> ins;
      for (int in : n.inputs) {
        ins.push_back(tensor_of.at(in));
      }
      Tensor t = GetOpInfo(n.op).build(ins, n.attrs, n.name);
      tensor_of[id] = t;
      if (id == grp.master) {
        master_tensor = t;
      }
    }
    Tensor output = tensor_of.at(grp.nodes.back());

    // Pick the schedule config.
    topi::Config config;
    const topi::OpWorkload* wl_ptr = nullptr;
    topi::OpWorkload wl;
    if (grp.master >= 0) {
      const Node& mnode = graph_.node(grp.master);
      if (mnode.op == "conv2d" || mnode.op == "depthwise_conv2d" || mnode.op == "dense" ||
          mnode.op == "sparse_dense" || mnode.op == "conv2d_transpose") {
        wl = WorkloadOf(mnode);
        wl_ptr = &wl;
        workloads_.push_back(wl);
        topi::ConfigSpace space = topi::GetScheduleSpace(wl, target_);
        // Config precedence, lowest to highest: untuned default < inherited
        // (Rebatched's base-model choices) < persistent tuning cache < explicit
        // `tuned`. Every source instantiates the same template with different
        // knob values — CPU templates never split reduction axes, so the choice
        // changes performance, never results.
        config = topi::DefaultConfig(space);
        bool from_cache = false;
        if (options_.inherited != nullptr) {
          auto it = options_.inherited->find(wl.Key());
          if (it != options_.inherited->end()) {
            config = it->second;
          }
        }
        if (options_.use_tuning_cache) {
          autotune::TuningCacheEntry entry;
          if (autotune::GlobalTuningCache().Lookup(
                  autotune::TuningKey(wl, target_, options_.specialize), &entry)) {
            topi::Config validated;
            if (autotune::ApplyCachedConfig(space, entry.config, &validated)) {
              config = std::move(validated);
              from_cache = true;
            } else {
              LOG(WARNING) << "tuning-cache entry for " << wl.Key()
                           << " no longer fits the schedule space; using untuned"
                              " fallback";
            }
          }
        }
        if (options_.tuned != nullptr) {
          auto it = options_.tuned->find(wl.Key());
          if (it != options_.tuned->end()) {
            config = it->second;
            from_cache = false;
          }
        }
        if (from_cache) {
          ++cache_tuned_kernels_;
        }
        // Remembered for Rebatched(): batched variants must inherit these exact
        // configs rather than re-derive defaults from the batched workload, so the
        // per-row schedule (and thus per-element FP order and performance) is
        // unchanged by batching.
        chosen_configs_[wl.Key()] = config;
      }
    }
    Schedule sch = topi::ScheduleFusedGroup(target_, {output},
                                            master_tensor.defined() ? master_tensor
                                                                    : Tensor(),
                                            config, wl_ptr);
    std::vector<Tensor> args = arg_tensors;
    args.push_back(output);
    Kernel k;
    k.name = "fused_" + graph_.node(grp.nodes.back()).name;
    k.func = Lower(sch, args, k.name);
    if (GetExecEngine() != ExecEngine::kInterp) {
      // Compiled once, reused by every Run(); loop specialization per the model's
      // (possibly inherited) CompileOptions rather than the process environment.
      // Under the native engine this is the first fallback tier, so it is compiled
      // eagerly too rather than lazily on the first native miss.
      k.program = vm::CompileToProgram(k.func, options_.specialize);
    }
    k.input_nodes = externals;
    k.output_node = grp.nodes.back();
    kernels_.push_back(std::move(k));
  }

  if (GetExecEngine() == ExecEngine::kNative) {
    // Tier-2 AOT: all fused kernels are emitted into one C translation unit and
    // compiled as a single .so (one compiler invocation per graph, one dlopen'd
    // module kept alive by every kernel's shared_ptr). Kernels whose emission
    // failed come back empty and fall down-tier at Run() time.
    std::vector<const LoweredFunc*> funcs;
    funcs.reserve(kernels_.size());
    for (const Kernel& k : kernels_) {
      funcs.push_back(&k.func);
    }
    std::vector<codegen::NativeKernel> native =
        codegen::CompileNativeKernels(funcs, options_.specialize);
    for (size_t i = 0; i < kernels_.size() && i < native.size(); ++i) {
      kernels_[i].native = native[i];
    }
  }
}

void CompiledGraph::AllocateBuffers(std::unordered_map<int, NDArray>* values) const {
  // One buffer per materialized node, sharing byte storage between nodes the memory
  // plan assigned to the same storage token (their live ranges are disjoint, so
  // intermediates reuse buffers instead of each getting a fresh allocation). Tokens
  // are request-local: concurrent requests never share writable storage.
  std::unordered_map<int, NDArray> token_storage;
  for (const FusedGroup& grp : groups_) {
    const Node& out = graph_.node(grp.nodes.back());
    int sid = plan_.storage_id[static_cast<size_t>(out.id)];
    if (sid < 0) {
      (*values)[out.id] = NDArray::Empty(out.shape, out.dtype);
      continue;
    }
    NDArray& storage = token_storage[sid];
    if (!storage.defined()) {
      storage = NDArray::Empty({plan_.storage_bytes[static_cast<size_t>(sid)]},
                               DataType::Int8());
    }
    (*values)[out.id] = NDArray::ShareStorage(storage, out.shape, out.dtype);
  }
}

void CompiledGraph::SetParam(const std::string& name, const NDArray& value) {
  params_[NodeIdOf(name)] = value;
}

std::shared_ptr<CompiledGraph> CompiledGraph::Rebatched(int factor) const {
  // The batched variant inherits this model's schedule configs, remapped to the
  // batched workload keys (batch-1 tile choices stay valid: their divisors divide
  // the scaled n too). Re-deriving DefaultConfig from the batched workload would
  // pick different tilings — e.g. dense tile_y > 1 — changing per-row code for no
  // benefit and costing per-row performance in the small-kernel regime batching
  // exists to amortize. The remap rides in `inherited`, not `tuned`: the compile
  // consults the persistent tuning cache *above* it, so a batch-N workload the
  // fleet has tuned gets its own schedule instead of the batch-1 hand-me-down.
  TunedConfigs inherited;
  for (const topi::OpWorkload& wl : workloads_) {
    auto it = chosen_configs_.find(wl.Key());
    if (it != chosen_configs_.end()) {
      topi::OpWorkload batched_wl = wl;
      batched_wl.n *= factor;
      inherited[batched_wl.Key()] = it->second;
    }
  }
  // graph_ is the post-AlterLayout graph when enable_layout was on, so the variant
  // must not run the layout pass a second time.
  CompileOptions options = options_;
  options.enable_layout = false;
  options.tuned = nullptr;  // explicit configs were keyed for this batch, not N
  options.inherited = &inherited;
  auto batched = std::make_shared<CompiledGraph>(RebatchGraph(graph_, factor),
                                                 target_, options);
  // `inherited` is only read during Compile() (in the constructor above); null
  // the pointer so the stored options never dangle into this stack frame.
  batched->options_.inherited = nullptr;
  // RebatchGraph preserves node ids, so the id-keyed weight bindings transfer
  // directly; the NDArrays themselves are shared (read-only at run time).
  batched->params_ = params_;
  return batched;
}

void CompiledGraph::Run(RunContext* ctx, const vm::ExecOptions& exec) const {
  CHECK(ctx != nullptr && ctx->compiled_.get() == this)
      << "RunContext belongs to a different CompiledGraph";
  auto buffer_of = [&](int id) -> const NDArray& {
    auto it = ctx->values_.find(id);
    if (it != ctx->values_.end()) {
      return it->second;  // per-request inputs and intermediates win over params
    }
    auto pit = params_.find(id);
    CHECK(pit != params_.end()) << "unbound graph buffer " << graph_.node(id).name;
    return pit->second;
  };
  // One coherent engine choice for the whole request, even if a test flips the
  // process-wide slot mid-run.
  const ExecEngine engine = GetExecEngine();
  size_t ki = 0;
  for (const Kernel& k : kernels_) {
    if (ki++ > 0) {
      // Mid-run cancellation seam: a request popped just before its deadline must
      // not run the remaining kernels to completion once the budget is gone. The
      // failpoint sits before the check so fault tests can delay here and observe
      // the cancellation fire.
      FAILPOINT("graph.kernel");
      if (exec.deadline != std::chrono::steady_clock::time_point::max() &&
          std::chrono::steady_clock::now() >= exec.deadline) {
        throw DeadlineExceededError("deadline exceeded before kernel " + k.name);
      }
    }
    std::vector<BufferBinding> bindings;
    for (int id : k.input_nodes) {
      bindings.push_back(buffer_of(id).Binding());
    }
    bindings.push_back(buffer_of(k.output_node).Binding());
    if (exec.force_interp) {
      // Explicit down-tier (the serving layer's fault-fallback ladder): run the
      // reference interpreter deliberately. Not a silent downgrade, so it is not
      // counted by FallbackCount and does not trip TVMCPP_VM_STRICT.
      RunLoweredInterp(k.func, bindings);
      continue;
    }
    if (engine == ExecEngine::kNative) {
      if (k.native) {
        codegen::RunNativeKernel(k.native, bindings);
        continue;
      }
      // Native engine selected but the kernel failed to emit/compile: record the
      // silent downgrade (fatal under TVMCPP_VM_STRICT=1) and try the VM tier.
      vm::NoteFallback(k.func.name);
    }
    if (engine != ExecEngine::kInterp) {
      if (k.program != nullptr) {
        vm::Run(*k.program, bindings, exec);
        continue;
      }
      // VM tier unavailable too: one more counted downgrade to the interpreter.
      vm::NoteFallback(k.func.name);
    }
    RunLoweredInterp(k.func, bindings);
  }
}

double CompiledGraph::EstimateSeconds() const {
  double total = 0;
  for (const Kernel& k : kernels_) {
    total += EstimateCost(target_, k.func).seconds;
  }
  return total;
}

std::vector<std::pair<std::string, double>> CompiledGraph::KernelCosts() const {
  std::vector<std::pair<std::string, double>> out;
  for (const Kernel& k : kernels_) {
    out.emplace_back(k.name, EstimateCost(target_, k.func).seconds);
  }
  return out;
}

RunContext::RunContext(std::shared_ptr<const CompiledGraph> compiled)
    : compiled_(std::move(compiled)) {
  CHECK(compiled_ != nullptr) << "RunContext over a null CompiledGraph";
  compiled_->AllocateBuffers(&values_);
}

void RunContext::SetInput(const std::string& name, const NDArray& value) {
  values_[compiled_->NodeIdOf(name)] = value;
}

NDArray RunContext::GetOutput(int index) const {
  return values_.at(compiled_->graph().outputs[static_cast<size_t>(index)]);
}

void RunContext::BindOutput(int index, const NDArray& buffer) {
  const std::vector<int>& outputs = compiled_->graph().outputs;
  CHECK(index >= 0 && static_cast<size_t>(index) < outputs.size())
      << "BindOutput index " << index << " out of range";
  const Node& node = compiled_->graph().node(outputs[static_cast<size_t>(index)]);
  CHECK(buffer.shape() == node.shape && buffer.dtype() == node.dtype)
      << "BindOutput buffer shape/dtype mismatch for output " << index << " (" << node.name
      << ")";
  values_[outputs[static_cast<size_t>(index)]] = buffer;
}

}  // namespace graph
}  // namespace tvmcpp
