// Graph executor (Section 2's runtime module): compiles a computational graph into fused
// kernels for a target and runs them on the selected execution engine.
//
// The execution path is split for concurrent serving (src/serve):
//   - CompiledGraph: the immutable product of graph compilation — fused groups, memory
//     plan, lowered funcs, and cached vm::Programs. Shared read-only by any number of
//     in-flight requests; Run() is const and reentrant.
//   - RunContext: the cheap per-request state — input/output/intermediate buffers laid
//     out per the memory plan. One per logically-concurrent request.
//   - GraphExecutor: the original single-request convenience facade, now a thin
//     CompiledGraph + RunContext pair with the same API as before the split.
#ifndef SRC_GRAPH_EXECUTOR_H_
#define SRC_GRAPH_EXECUTOR_H_

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/codegen/native.h"
#include "src/graph/graph.h"
#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace graph {

// Per-operator tuned configs, keyed by OpWorkload::Key().
using TunedConfigs = std::unordered_map<std::string, topi::Config>;

struct CompileOptions {
  bool enable_fusion = true;       // graph-level operator fusion (Section 3)
  bool enable_fold = true;         // constant folding
  bool enable_layout = false;      // layout transformation (CPU)
  // Explicit per-workload configs; wins over every other config source.
  const TunedConfigs* tuned = nullptr;
  // Consult the process-wide persistent tuning cache (autotune::GlobalTuningCache,
  // loaded from TVMCPP_TUNE_CACHE) for each master workload at lowering time.
  // The lookup key includes the workload's batch dimension, so a Rebatched()
  // variant's batch-N kernels find their own tuned schedules when the fleet has
  // tuned them. Misses (or entries that no longer fit the schedule space) fall
  // back to `inherited`, then to the untuned default config.
  bool use_tuning_cache = true;
  // Fallback configs consulted *below* the tuning cache: Rebatched() passes the
  // base model's chosen configs remapped to batch-N keys here, so batch variants
  // keep the base schedules unless the cache knows something batch-specific.
  const TunedConfigs* inherited = nullptr;
  // VM loop-specialization config used when compiling each fused kernel's bytecode
  // program. Carried by value so Rebatched() variants inherit the base model's
  // setting — batched rows get the same unroll/hoist treatment (notably the hoisted
  // batch-offset adds) without re-reading the environment at batch-compile time.
  LoopSpecializeOptions specialize = LoopSpecializeOptions::FromEnv();
};

class CompiledGraph;

// Thrown by CompiledGraph::Run when vm::ExecOptions::deadline passes between kernel
// invocations: a request popped just before its deadline stops after the current
// kernel instead of running the remaining graph to completion. The serving layer
// maps it to StatusCode::kDeadlineExceeded (no retry — the budget is already gone).
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

// Per-request mutable state: one buffer per materialized node, with intermediates
// sharing storage tokens per the memory plan. Construction is cheap relative to
// compilation (a handful of allocations); N concurrent requests hold N RunContexts
// against one shared CompiledGraph.
class RunContext {
 public:
  explicit RunContext(std::shared_ptr<const CompiledGraph> compiled);

  void SetInput(const std::string& name, const NDArray& value);
  NDArray GetOutput(int index) const;
  // Replaces graph output `index`'s buffer with caller-owned storage (e.g. a
  // shared-memory slab), so Run() writes that output directly there instead of
  // into the memory plan's token — the zero-copy response half of the shm
  // transport. Must be called before Run(); shape and dtype must match the
  // output node exactly. Safe even when the output node's plan token is shared:
  // rebinding redirects only this node's buffer, other tensors keep their own
  // views of the token.
  void BindOutput(int index, const NDArray& buffer);
  const CompiledGraph& compiled() const { return *compiled_; }

 private:
  friend class CompiledGraph;
  std::shared_ptr<const CompiledGraph> compiled_;
  std::unordered_map<int, NDArray> values_;  // node id -> buffer
};

// The immutable compiled form of a graph: safe to share across threads. Parameters
// (weights) bound via SetParam before serving starts are shared by every RunContext;
// SetParam itself is not synchronized against concurrent Run() calls.
class CompiledGraph {
 public:
  CompiledGraph(Graph g, Target target, CompileOptions options = {});

  // Binds a weight shared by all requests. Call before concurrent Run()s begin.
  void SetParam(const std::string& name, const NDArray& value);

  // Executes all kernels against the request's buffers: each fused kernel runs its
  // bytecode program compiled and cached at construction time (or the reference
  // interpreter, per GetExecEngine()). Const and reentrant: any number of Run()s on
  // distinct RunContexts may be in flight; `exec` selects the worker pool / thread
  // count for intra-kernel kParallel chunking.
  void Run(RunContext* ctx, const vm::ExecOptions& exec = {}) const;

  // Compiles a batched variant of this graph: every `input` node's leading (batch)
  // dimension is scaled by `factor` (RebatchGraph) and the result is compiled for the
  // same target/options, sharing this model's parameter NDArrays (weights are
  // batch-invariant). Used by the serving layer's dynamic batching to run N coalesced
  // requests as one kernel invocation; the per-request FP operation order is
  // unchanged (CPU schedules never split reduction axes per batch), so per-slice
  // results stay bitwise-identical to batch-1 runs.
  std::shared_ptr<CompiledGraph> Rebatched(int factor) const;

  // Sum of per-kernel machine-model costs: the end-to-end latency estimate.
  double EstimateSeconds() const;
  // Per-kernel breakdown (kernel name, seconds).
  std::vector<std::pair<std::string, double>> KernelCosts() const;

  int num_kernels() const { return static_cast<int>(kernels_.size()); }
  const MemoryPlan& memory_plan() const { return plan_; }
  const Graph& graph() const { return graph_; }
  // The master workloads encountered (for tuning ahead of compilation).
  const std::vector<topi::OpWorkload>& workloads() const { return workloads_; }
  // Schedule config actually used per workload key (explicit, cached, inherited,
  // or default), for tests and for Rebatched() inheritance.
  const TunedConfigs& chosen_configs() const { return chosen_configs_; }
  // Kernels whose schedule came from the persistent tuning cache (as opposed to
  // an explicit `tuned` entry, an inherited config, or the untuned default).
  int num_cache_tuned_kernels() const { return cache_tuned_kernels_; }
  int NodeIdOf(const std::string& name) const;

 private:
  friend class RunContext;

  struct Kernel {
    LoweredFunc func;
    // Bytecode program compiled once at graph-compile time; null when the VM cannot
    // compile the kernel (it then runs on the reference interpreter). Also compiled
    // under the native engine, as that engine's first fallback tier.
    std::shared_ptr<const vm::Program> program;
    // Tier-2 AOT kernel (src/codegen), compiled once at graph-compile time when the
    // native engine is selected; empty when emission or compilation failed (the
    // kernel then falls down-tier to `program`, then to the interpreter).
    codegen::NativeKernel native;
    std::vector<int> input_nodes;  // graph node ids bound to func args (last = output)
    int output_node = -1;
    std::string name;
  };

  void Compile();
  topi::OpWorkload WorkloadOf(const Node& master) const;
  // Allocates the per-request buffers for all materialized nodes, sharing byte
  // storage between nodes assigned to the same memory-plan token.
  void AllocateBuffers(std::unordered_map<int, NDArray>* values) const;

  Graph graph_;
  Target target_;
  CompileOptions options_;
  std::vector<FusedGroup> groups_;
  MemoryPlan plan_;
  std::vector<Kernel> kernels_;
  std::vector<topi::OpWorkload> workloads_;
  // Schedule config actually used per workload key (tuned or default) — inherited
  // verbatim by Rebatched() variants so batching never changes per-row schedules
  // unless the tuning cache holds a batch-specific entry.
  TunedConfigs chosen_configs_;
  int cache_tuned_kernels_ = 0;
  std::unordered_map<int, NDArray> params_;  // weights shared by all RunContexts
  std::unordered_map<std::string, int> name_to_node_;
};

// Single-request facade over a private CompiledGraph + RunContext, preserving the
// pre-split API. Tests, benches, and examples that run one request at a time use
// this; the serving layer shares the CompiledGraph across many RunContexts instead.
class GraphExecutor {
 public:
  GraphExecutor(Graph g, Target target, CompileOptions options = {})
      : compiled_(std::make_shared<CompiledGraph>(std::move(g), std::move(target),
                                                  options)),
        ctx_(compiled_) {}

  void SetInput(const std::string& name, const NDArray& value) {
    ctx_.SetInput(name, value);
  }
  // Binds a weight on the shared CompiledGraph (not this facade's RunContext), so a
  // compiled() handle later given to serve::InferenceServer carries the params. For
  // this facade's own Run() the lookup order (context first, params second) makes
  // the two destinations indistinguishable.
  void SetParam(const std::string& name, const NDArray& value) {
    compiled_->SetParam(name, value);
  }
  void Run() { compiled_->Run(&ctx_); }
  NDArray GetOutput(int index) const { return ctx_.GetOutput(index); }

  double EstimateSeconds() const { return compiled_->EstimateSeconds(); }
  std::vector<std::pair<std::string, double>> KernelCosts() const {
    return compiled_->KernelCosts();
  }

  int num_kernels() const { return compiled_->num_kernels(); }
  const MemoryPlan& memory_plan() const { return compiled_->memory_plan(); }
  const Graph& graph() const { return compiled_->graph(); }
  const std::vector<topi::OpWorkload>& workloads() const {
    return compiled_->workloads();
  }
  // The shared compiled form, e.g. to hand to serve::InferenceServer.
  std::shared_ptr<const CompiledGraph> compiled() const { return compiled_; }

 private:
  std::shared_ptr<CompiledGraph> compiled_;
  RunContext ctx_;
};

}  // namespace graph
}  // namespace tvmcpp

#endif  // SRC_GRAPH_EXECUTOR_H_
