// Graph executor (Section 2's runtime module): compiles a computational graph into fused
// kernels for a target, runs them on the reference interpreter, and estimates end-to-end
// latency on the target's machine model.
#ifndef SRC_GRAPH_EXECUTOR_H_
#define SRC_GRAPH_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/lower/lower.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace graph {

// Per-operator tuned configs, keyed by OpWorkload::Key().
using TunedConfigs = std::unordered_map<std::string, topi::Config>;

struct CompileOptions {
  bool enable_fusion = true;       // graph-level operator fusion (Section 3)
  bool enable_fold = true;         // constant folding
  bool enable_layout = false;      // layout transformation (CPU)
  const TunedConfigs* tuned = nullptr;
};

class GraphExecutor {
 public:
  GraphExecutor(Graph g, Target target, CompileOptions options = {});

  void SetInput(const std::string& name, const NDArray& value);
  void SetParam(const std::string& name, const NDArray& value);
  // Executes all kernels: each fused kernel runs its bytecode program compiled and
  // cached at construction time (or the reference interpreter, per GetExecEngine()).
  void Run();
  NDArray GetOutput(int index) const;

  // Sum of per-kernel machine-model costs: the end-to-end latency estimate.
  double EstimateSeconds() const;
  // Per-kernel breakdown (kernel name, seconds).
  std::vector<std::pair<std::string, double>> KernelCosts() const;

  int num_kernels() const { return static_cast<int>(kernels_.size()); }
  const MemoryPlan& memory_plan() const { return plan_; }
  const Graph& graph() const { return graph_; }
  // The master workloads encountered (for tuning ahead of compilation).
  const std::vector<topi::OpWorkload>& workloads() const { return workloads_; }

 private:
  struct Kernel {
    LoweredFunc func;
    // Bytecode program compiled once at graph-compile time; null when the VM cannot
    // compile the kernel (it then runs on the reference interpreter).
    std::shared_ptr<const vm::Program> program;
    std::vector<int> input_nodes;  // graph node ids bound to func args (last = output)
    int output_node = -1;
    std::string name;
  };

  void Compile();
  topi::OpWorkload WorkloadOf(const Node& master) const;

  Graph graph_;
  Target target_;
  CompileOptions options_;
  std::vector<FusedGroup> groups_;
  MemoryPlan plan_;
  std::vector<Kernel> kernels_;
  std::vector<topi::OpWorkload> workloads_;
  std::unordered_map<int, NDArray> values_;  // node id -> buffer
  std::unordered_map<std::string, int> name_to_node_;
};

}  // namespace graph
}  // namespace tvmcpp

#endif  // SRC_GRAPH_EXECUTOR_H_
