// The computational-graph layer (Section 3): graph IR, operator registry with the
// paper's four fusion categories, and the high-level optimization passes
// (operator fusion, constant folding, static memory planning, layout transformation).
#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/ndarray.h"
#include "src/te/tensor.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace graph {

// The paper's operator categories (Section 3, Operator Fusion).
enum class OpPattern {
  kInjective,         // one-to-one maps (add, relu, reshape-like)
  kReduction,         // e.g. sum, pooling
  kComplexOutFusable, // conv2d/dense: elementwise ops can fuse onto the output
  kOpaque,            // cannot fuse (e.g. sort)
};

// Node attributes: integer parameters (stride, pad, ...) only.
using Attrs = std::map<std::string, int64_t>;

struct Node {
  int id = -1;
  std::string op;              // operator name, or "input" / "const"
  std::string name;            // unique node name
  std::vector<int> inputs;     // node ids
  Attrs attrs;
  std::vector<int64_t> shape;  // inferred output shape
  DataType dtype = DataType::Float32();
};

class Graph {
 public:
  // Adds an input (placeholder) node.
  int AddInput(const std::string& name, std::vector<int64_t> shape,
               DataType dtype = DataType::Float32());
  // Adds a parameter (constant) node; the value is bound at executor creation.
  int AddConst(const std::string& name, std::vector<int64_t> shape,
               DataType dtype = DataType::Float32());
  // Adds an operator node; shape is inferred via the registry.
  int AddOp(const std::string& op, const std::string& name, std::vector<int> inputs,
            Attrs attrs = {});

  const Node& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  Node& node(int id) { return nodes_[static_cast<size_t>(id)]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const std::vector<Node>& nodes() const { return nodes_; }

  std::vector<int> outputs;  // output node ids

 private:
  std::vector<Node> nodes_;
};

// ---------------------------------------------------------------------------
// Operator registry
// ---------------------------------------------------------------------------

struct OpInfo {
  OpPattern pattern = OpPattern::kInjective;
  // Shape inference from input shapes + attrs.
  std::function<std::vector<int64_t>(const std::vector<std::vector<int64_t>>&, const Attrs&)>
      infer_shape;
  // te compute builder from input tensors + attrs.
  std::function<Tensor(const std::vector<Tensor>&, const Attrs&, const std::string&)> build;
  // Approximate flops for a node (for baselines and summaries).
  std::function<double(const std::vector<std::vector<int64_t>>&,
                       const std::vector<int64_t>&, const Attrs&)>
      flops;
};

const OpInfo& GetOpInfo(const std::string& op);
bool HasOpInfo(const std::string& op);

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

// One fused group: nodes executed as a single kernel.
struct FusedGroup {
  std::vector<int> nodes;  // in topological order; last is the group output
  int master = -1;         // complex-out-fusable anchor node (-1 if none)
};

// The paper's fusion rules over the four categories.
std::vector<FusedGroup> FuseOps(const Graph& g, bool enable_fusion = true);

// Folds subgraphs whose inputs are all constants into precomputed parameters.
// Returns the set of node ids that became constants (their values in `folded`).
int ConstantFold(Graph* g, std::unordered_map<int, NDArray>* params);

// Static memory planning: assigns each non-input node a storage id, reusing buffers
// whose live ranges do not overlap. Returns storage id per node and the total/peak bytes.
struct MemoryPlan {
  std::vector<int> storage_id;        // per node; -1 for inputs/consts
  std::vector<int64_t> storage_bytes; // widened bytes per storage id (executor metric)
  int64_t planned_bytes = 0;          // with reuse
  int64_t unplanned_bytes = 0;        // naive sum of all intermediates
};
MemoryPlan PlanMemory(const Graph& g, const std::vector<FusedGroup>& groups);

// Data layout transformation (Section 3): converts conv2d nodes to a blocked
// NCHW[c] layout when beneficial for the target, inserting layout_transform nodes.
// Returns the number of transforms inserted.
int AlterLayout(Graph* g, const Target& target, int block_c = 4);

// Rebuilds `g` with every `input` node's leading (batch) dimension scaled by
// `factor`, re-running shape inference so all downstream op shapes pick up the new
// batch extent; `const` nodes (weights) keep their shapes, and node ids/names/attrs
// are preserved verbatim. This is the generic path the serving layer uses to compile
// batched variants of a model for dynamic request batching (concat along N).
// Requires every operator in the graph to be batch-covariant in dimension 0 —
// true for the conv/dense/elementwise operator registry here.
Graph RebatchGraph(const Graph& g, int factor);

}  // namespace graph
}  // namespace tvmcpp

#endif  // SRC_GRAPH_GRAPH_H_
