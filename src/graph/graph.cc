#include "src/graph/graph.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/simplify.h"
#include "src/topi/nn.h"
#include "src/topi/sparse.h"

namespace tvmcpp {
namespace graph {

namespace {

int64_t AttrOr(const Attrs& a, const std::string& k, int64_t fallback) {
  auto it = a.find(k);
  return it == a.end() ? fallback : it->second;
}

std::unordered_map<std::string, OpInfo> BuildRegistry() {
  using Shapes = std::vector<std::vector<int64_t>>;
  std::unordered_map<std::string, OpInfo> reg;

  auto same_shape = [](const Shapes& in, const Attrs&) { return in[0]; };
  auto zero_flops = [](const Shapes&, const std::vector<int64_t>&, const Attrs&) {
    return 0.0;
  };
  auto elems_flops = [](const Shapes&, const std::vector<int64_t>& out, const Attrs&) {
    double n = 1;
    for (int64_t d : out) {
      n *= static_cast<double>(d);
    }
    return n;
  };

  // --- complex-out-fusable anchors ---
  {
    OpInfo conv;
    conv.pattern = OpPattern::kComplexOutFusable;
    conv.infer_shape = [](const Shapes& in, const Attrs& a) {
      int64_t s = AttrOr(a, "stride", 1), p = AttrOr(a, "pad", 0);
      int64_t k = in[1][2];
      return std::vector<int64_t>{in[0][0], in[1][0], topi::ConvOutDim(in[0][2], k, s, p),
                                  topi::ConvOutDim(in[0][3], k, s, p)};
    };
    conv.build = [](const std::vector<Tensor>& in, const Attrs& a, const std::string& name) {
      return topi::Conv2dNCHW(in[0], in[1], static_cast<int>(AttrOr(a, "stride", 1)),
                              static_cast<int>(AttrOr(a, "pad", 0)), name);
    };
    conv.flops = [](const Shapes& in, const std::vector<int64_t>& out, const Attrs&) {
      return 2.0 * out[0] * out[1] * out[2] * out[3] * in[0][1] * in[1][2] * in[1][3];
    };
    reg["conv2d"] = conv;

    OpInfo dw = conv;
    dw.infer_shape = [](const Shapes& in, const Attrs& a) {
      int64_t s = AttrOr(a, "stride", 1), p = AttrOr(a, "pad", 0);
      int64_t k = in[1][2];
      return std::vector<int64_t>{in[0][0], in[0][1], topi::ConvOutDim(in[0][2], k, s, p),
                                  topi::ConvOutDim(in[0][3], k, s, p)};
    };
    dw.build = [](const std::vector<Tensor>& in, const Attrs& a, const std::string& name) {
      return topi::DepthwiseConv2dNCHW(in[0], in[1], static_cast<int>(AttrOr(a, "stride", 1)),
                                       static_cast<int>(AttrOr(a, "pad", 0)), name);
    };
    dw.flops = [](const Shapes& in, const std::vector<int64_t>& out, const Attrs&) {
      return 2.0 * out[0] * out[1] * out[2] * out[3] * in[1][2] * in[1][3];
    };
    reg["depthwise_conv2d"] = dw;

    OpInfo dense;
    dense.pattern = OpPattern::kComplexOutFusable;
    dense.infer_shape = [](const Shapes& in, const Attrs&) {
      return std::vector<int64_t>{in[0][0], in[1][0]};
    };
    dense.build = [](const std::vector<Tensor>& in, const Attrs&, const std::string& name) {
      return topi::Dense(in[0], in[1], name);
    };
    dense.flops = [](const Shapes& in, const std::vector<int64_t>& out, const Attrs&) {
      return 2.0 * out[0] * out[1] * in[0][1];
    };
    reg["dense"] = dense;

    // CSR SpMM: inputs [x, w_data, w_indices, w_indptr] (the CSR arrays are const
    // nodes shaped by src/runtime/csr.h), attrs {nnz, max_row_nnz}. The output
    // width comes from the indptr length, so rebatching's re-inference only ever
    // scales the batch row of in[0].
    OpInfo sparse;
    sparse.pattern = OpPattern::kComplexOutFusable;
    sparse.infer_shape = [](const Shapes& in, const Attrs&) {
      return std::vector<int64_t>{in[0][0], in[3][0] - 1};
    };
    sparse.build = [](const std::vector<Tensor>& in, const Attrs& a,
                      const std::string& name) {
      return topi::SparseDense(in[0], in[1], in[2], in[3],
                               AttrOr(a, "max_row_nnz", 0), name);
    };
    sparse.flops = [](const Shapes&, const std::vector<int64_t>& out, const Attrs& a) {
      return 2.0 * static_cast<double>(out[0]) *
             static_cast<double>(AttrOr(a, "nnz", 0));
    };
    reg["sparse_dense"] = sparse;

    OpInfo dconv;
    dconv.pattern = OpPattern::kComplexOutFusable;
    dconv.infer_shape = [](const Shapes& in, const Attrs& a) {
      int64_t s = AttrOr(a, "stride", 1), p = AttrOr(a, "pad", 0);
      int64_t k = in[1][2];
      return std::vector<int64_t>{in[0][0], in[1][1], (in[0][2] - 1) * s + k - 2 * p,
                                  (in[0][3] - 1) * s + k - 2 * p};
    };
    dconv.build = [](const std::vector<Tensor>& in, const Attrs& a,
                     const std::string& name) {
      return topi::Conv2dTransposeNCHW(in[0], in[1],
                                       static_cast<int>(AttrOr(a, "stride", 1)),
                                       static_cast<int>(AttrOr(a, "pad", 0)), name);
    };
    dconv.flops = [](const Shapes& in, const std::vector<int64_t>& out, const Attrs&) {
      return 2.0 * in[0][0] * in[0][1] * out[1] * in[0][2] * in[0][3] * 16;
    };
    reg["conv2d_transpose"] = dconv;
  }

  // --- injective elementwise ---
  auto add_injective = [&](const std::string& name,
                           std::function<Tensor(const std::vector<Tensor>&, const Attrs&,
                                                const std::string&)>
                               build) {
    OpInfo info;
    info.pattern = OpPattern::kInjective;
    info.infer_shape = same_shape;
    info.build = std::move(build);
    info.flops = elems_flops;
    reg[name] = info;
  };
  add_injective("relu", [](const std::vector<Tensor>& in, const Attrs&,
                           const std::string& n) { return topi::Relu(in[0], n); });
  add_injective("tanh", [](const std::vector<Tensor>& in, const Attrs&,
                           const std::string& n) { return topi::TanhOp(in[0], n); });
  add_injective("sigmoid", [](const std::vector<Tensor>& in, const Attrs&,
                              const std::string& n) { return topi::SigmoidOp(in[0], n); });
  add_injective("add", [](const std::vector<Tensor>& in, const Attrs&,
                          const std::string& n) { return topi::Add(in[0], in[1], n); });
  add_injective("mul", [](const std::vector<Tensor>& in, const Attrs&,
                          const std::string& n) { return topi::Mul(in[0], in[1], n); });
  add_injective("batch_norm",
                [](const std::vector<Tensor>& in, const Attrs&, const std::string& n) {
                  return topi::BatchNorm(in[0], in[1], in[2], n);
                });
  add_injective("bias_add",
                [](const std::vector<Tensor>& in, const Attrs&, const std::string& n) {
                  return topi::BiasAdd(in[0], in[1], n);
                });

  {
    OpInfo flat;
    flat.pattern = OpPattern::kInjective;
    flat.infer_shape = [](const Shapes& in, const Attrs&) {
      int64_t n = 1;
      for (size_t i = 1; i < in[0].size(); ++i) {
        n *= in[0][i];
      }
      return std::vector<int64_t>{in[0][0], n};
    };
    flat.build = [](const std::vector<Tensor>& in, const Attrs&, const std::string& n) {
      return topi::Flatten(in[0], n);
    };
    flat.flops = zero_flops;
    reg["flatten"] = flat;
  }

  // --- reductions ---
  {
    OpInfo pool;
    pool.pattern = OpPattern::kReduction;
    pool.infer_shape = [](const Shapes& in, const Attrs& a) {
      int64_t k = AttrOr(a, "kernel", 2), s = AttrOr(a, "stride", 2), p = AttrOr(a, "pad", 0);
      return std::vector<int64_t>{in[0][0], in[0][1], topi::ConvOutDim(in[0][2], k, s, p),
                                  topi::ConvOutDim(in[0][3], k, s, p)};
    };
    pool.build = [](const std::vector<Tensor>& in, const Attrs& a, const std::string& n) {
      return topi::MaxPool2d(in[0], static_cast<int>(AttrOr(a, "kernel", 2)),
                             static_cast<int>(AttrOr(a, "stride", 2)),
                             static_cast<int>(AttrOr(a, "pad", 0)), n);
    };
    pool.flops = elems_flops;
    reg["max_pool2d"] = pool;

    OpInfo gap;
    gap.pattern = OpPattern::kReduction;
    gap.infer_shape = [](const Shapes& in, const Attrs&) {
      return std::vector<int64_t>{in[0][0], in[0][1]};
    };
    gap.build = [](const std::vector<Tensor>& in, const Attrs&, const std::string& n) {
      return topi::GlobalAvgPool(in[0], n);
    };
    gap.flops = elems_flops;
    reg["global_avg_pool"] = gap;

    OpInfo sm;
    sm.pattern = OpPattern::kOpaque;  // multi-stage; keep as its own kernel
    sm.infer_shape = same_shape;
    sm.build = [](const std::vector<Tensor>& in, const Attrs&, const std::string& n) {
      return topi::Softmax(in[0], n);
    };
    sm.flops = elems_flops;
    reg["softmax"] = sm;
  }
  return reg;
}

std::unordered_map<std::string, OpInfo>& Registry() {
  static std::unordered_map<std::string, OpInfo> reg = BuildRegistry();
  return reg;
}

}  // namespace

const OpInfo& GetOpInfo(const std::string& op) {
  auto& reg = Registry();
  auto it = reg.find(op);
  CHECK(it != reg.end()) << "unregistered operator " << op;
  return it->second;
}

bool HasOpInfo(const std::string& op) { return Registry().count(op) > 0; }

int Graph::AddInput(const std::string& name, std::vector<int64_t> shape, DataType dtype) {
  Node n;
  n.id = num_nodes();
  n.op = "input";
  n.name = name;
  n.shape = std::move(shape);
  n.dtype = dtype;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Graph::AddConst(const std::string& name, std::vector<int64_t> shape, DataType dtype) {
  Node n;
  n.id = num_nodes();
  n.op = "const";
  n.name = name;
  n.shape = std::move(shape);
  n.dtype = dtype;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

int Graph::AddOp(const std::string& op, const std::string& name, std::vector<int> inputs,
                 Attrs attrs) {
  const OpInfo& info = GetOpInfo(op);
  std::vector<std::vector<int64_t>> in_shapes;
  for (int i : inputs) {
    in_shapes.push_back(node(i).shape);
  }
  Node n;
  n.id = num_nodes();
  n.op = op;
  n.name = name;
  n.inputs = std::move(inputs);
  n.attrs = std::move(attrs);
  n.shape = info.infer_shape(in_shapes, n.attrs);
  n.dtype = node(n.inputs[0]).dtype;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

Graph RebatchGraph(const Graph& g, int factor) {
  CHECK_GE(factor, 1) << "RebatchGraph factor must be positive";
  Graph out;
  for (const Node& n : g.nodes()) {
    int id;
    if (n.op == "input") {
      CHECK(!n.shape.empty()) << "cannot rebatch scalar input " << n.name;
      std::vector<int64_t> shape = n.shape;
      shape[0] *= factor;
      id = out.AddInput(n.name, std::move(shape), n.dtype);
    } else if (n.op == "const") {
      id = out.AddConst(n.name, n.shape, n.dtype);
    } else {
      id = out.AddOp(n.op, n.name, n.inputs, n.attrs);
    }
    CHECK_EQ(id, n.id) << "RebatchGraph must preserve node ids";
  }
  out.outputs = g.outputs;
  return out;
}

// ---------------------------------------------------------------------------
// Operator fusion (the paper's rules over the four categories)
// ---------------------------------------------------------------------------

std::vector<FusedGroup> FuseOps(const Graph& g, bool enable_fusion) {
  int n = g.num_nodes();
  std::vector<int> consumers(static_cast<size_t>(n), 0);
  for (const Node& node : g.nodes()) {
    for (int i : node.inputs) {
      consumers[static_cast<size_t>(i)]++;
    }
  }
  std::unordered_set<int> output_set(g.outputs.begin(), g.outputs.end());

  std::vector<int> group_of(static_cast<size_t>(n), -1);
  std::vector<FusedGroup> groups;
  for (const Node& node : g.nodes()) {
    if (node.op == "input" || node.op == "const") {
      continue;
    }
    OpPattern pat = GetOpInfo(node.op).pattern;
    int target_group = -1;
    if (enable_fusion && pat != OpPattern::kOpaque) {
      // Try to fuse this node into the group of one of its producers, following the
      // paper's rules:
      //   injective + injective -> fuse
      //   injective consumer onto complex-out-fusable producer output -> fuse
      //   reduction with injective inputs -> fuse the input chain
      for (int in : node.inputs) {
        const Node& producer = g.node(in);
        if (producer.op == "input" || producer.op == "const") {
          continue;
        }
        int pg = group_of[static_cast<size_t>(in)];
        if (pg < 0) {
          continue;
        }
        // Only fuse along a single-consumer edge (otherwise the intermediate is needed
        // elsewhere) and never across graph outputs.
        if (consumers[static_cast<size_t>(in)] != 1 || output_set.count(in)) {
          continue;
        }
        OpPattern ppat = GetOpInfo(producer.op).pattern;
        bool ok = false;
        if (pat == OpPattern::kInjective &&
            (ppat == OpPattern::kInjective || ppat == OpPattern::kComplexOutFusable ||
             ppat == OpPattern::kReduction)) {
          // Elementwise consumer fuses onto any producer's output...
          // ...but a group can hold at most one non-injective op, and a group with a
          // master accepts only shape-preserving (element-wise) epilogues: shape-changing
          // injective ops like flatten would break the master's schedule template.
          ok = node.shape == producer.shape ||
               groups[static_cast<size_t>(pg)].master < 0;
        } else if (pat == OpPattern::kReduction && ppat == OpPattern::kInjective) {
          ok = groups[static_cast<size_t>(pg)].master < 0;
        } else if (pat == OpPattern::kComplexOutFusable && ppat == OpPattern::kInjective) {
          ok = groups[static_cast<size_t>(pg)].master < 0;
        }
        if (ok && (pat == OpPattern::kInjective ||
                   groups[static_cast<size_t>(pg)].master < 0)) {
          target_group = pg;
          break;
        }
      }
    }
    if (target_group < 0) {
      FusedGroup grp;
      groups.push_back(grp);
      target_group = static_cast<int>(groups.size()) - 1;
    }
    FusedGroup& grp = groups[static_cast<size_t>(target_group)];
    grp.nodes.push_back(node.id);
    if (pat != OpPattern::kInjective && grp.master < 0) {
      grp.master = node.id;
    }
    group_of[static_cast<size_t>(node.id)] = target_group;
  }

  // The greedy pass above creates groups in node-id order, but a node may fuse into
  // a group *created earlier* than the group of one of its other producers (diamond
  // shapes: add(gx, gh) fuses onto gx's group, which predates gh's) — so creation
  // order is not a valid execution order. The executor runs kernels, and PlanMemory
  // computes buffer liveness, in list-position order, so sort groups topologically
  // over cross-group data edges. Stable: independent groups keep creation order.
  size_t m = groups.size();
  std::vector<std::vector<size_t>> succ(m);
  std::vector<int> indeg(static_cast<size_t>(m), 0);
  for (size_t gi = 0; gi < m; ++gi) {
    for (int id : groups[gi].nodes) {
      for (int in : g.node(id).inputs) {
        int pg = group_of[static_cast<size_t>(in)];
        if (pg >= 0 && static_cast<size_t>(pg) != gi) {
          succ[static_cast<size_t>(pg)].push_back(gi);
          indeg[gi]++;
        }
      }
    }
  }
  std::vector<FusedGroup> ordered;
  ordered.reserve(m);
  std::vector<bool> emitted(m, false);
  for (size_t done = 0; done < m;) {
    size_t picked = m;
    for (size_t gi = 0; gi < m; ++gi) {
      if (!emitted[gi] && indeg[gi] == 0) {
        picked = gi;
        break;
      }
    }
    CHECK_LT(picked, m) << "cycle in fused-group dependencies";
    emitted[picked] = true;
    ordered.push_back(std::move(groups[picked]));
    for (size_t s : succ[picked]) {
      indeg[s]--;
    }
    ++done;
  }
  return ordered;
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

int ConstantFold(Graph* g, std::unordered_map<int, NDArray>* params) {
  // A node is foldable if every input is const and its op is registered.
  int folded = 0;
  for (int id = 0; id < g->num_nodes(); ++id) {
    Node& node = g->node(id);
    if (node.op == "input" || node.op == "const") {
      continue;
    }
    bool all_const = !node.inputs.empty();
    for (int in : node.inputs) {
      all_const &= g->node(in).op == "const" && params->count(in) > 0;
    }
    if (!all_const) {
      continue;
    }
    // Evaluate the node with the interpreter on a naive schedule.
    const OpInfo& info = GetOpInfo(node.op);
    std::vector<Tensor> in_tensors;
    std::vector<NDArray> in_arrays;
    for (int in : node.inputs) {
      const Node& p = g->node(in);
      std::vector<Expr> shape;
      for (int64_t d : p.shape) {
        shape.push_back(make_int(d));
      }
      in_tensors.push_back(placeholder(shape, p.dtype, p.name));
      in_arrays.push_back(params->at(in));
    }
    Tensor out = info.build(in_tensors, node.attrs, node.name);
    Schedule s = create_schedule({out});
    std::vector<Tensor> args = in_tensors;
    args.push_back(out);
    LoweredFunc f = Lower(s, args, "fold_" + node.name);
    NDArray result = NDArray::Empty(node.shape, node.dtype);
    std::vector<BufferBinding> bindings;
    for (const NDArray& a : in_arrays) {
      bindings.push_back(a.Binding());
    }
    bindings.push_back(result.Binding());
    RunLowered(f, bindings);
    // Rewrite the node into a constant.
    node.op = "const";
    node.inputs.clear();
    (*params)[id] = result;
    ++folded;
  }
  return folded;
}

// ---------------------------------------------------------------------------
// Static memory planning
// ---------------------------------------------------------------------------

MemoryPlan PlanMemory(const Graph& g, const std::vector<FusedGroup>& groups) {
  MemoryPlan plan;
  plan.storage_id.assign(static_cast<size_t>(g.num_nodes()), -1);
  std::unordered_set<int> output_set(g.outputs.begin(), g.outputs.end());

  // Liveness must be computed in kernel-execution order (group positions), not node
  // ids: a consumer fused as the epilogue of a much later group reads its input buffer
  // at that group's execution time, long after the consumer's own node id.
  std::unordered_map<int, int> produced_at;  // group-output node id -> group position
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    produced_at[groups[gi].nodes.back()] = static_cast<int>(gi);
  }
  // Last group position that reads each materialized buffer.
  std::vector<int> last_read(static_cast<size_t>(g.num_nodes()), -1);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    std::unordered_set<int> in_group(groups[gi].nodes.begin(), groups[gi].nodes.end());
    for (int id : groups[gi].nodes) {
      for (int in : g.node(id).inputs) {
        if (!in_group.count(in) && produced_at.count(in)) {
          last_read[static_cast<size_t>(in)] =
              std::max(last_read[static_cast<size_t>(in)], static_cast<int>(gi));
        }
      }
    }
  }
  int num_groups = static_cast<int>(groups.size());
  for (int out : g.outputs) {
    last_read[static_cast<size_t>(out)] = num_groups + 1;
  }

  struct Storage {
    int64_t bytes;
    int free_after;  // group position after which this storage is free
  };
  std::vector<Storage> pool;
  // Widened storage bytes, the same metric the executor allocates with (float16 is
  // stored as float32, sub-byte ints as int8) — packed device bytes would make the
  // best-fit ranking diverge from the buffers actually shared at runtime.
  auto bytes_of = [&](const Node& n) {
    int64_t e = 1;
    for (int64_t d : n.shape) {
      e *= d;
    }
    return e * InterpElementBytes(n.dtype);
  };

  for (int gi = 0; gi < num_groups; ++gi) {
    const Node& node = g.node(groups[static_cast<size_t>(gi)].nodes.back());
    int64_t bytes = bytes_of(node);
    plan.unplanned_bytes += bytes;
    if (output_set.count(node.id)) {
      // Outputs get dedicated storage.
      pool.push_back(Storage{bytes, num_groups + 2});
      plan.storage_id[static_cast<size_t>(node.id)] = static_cast<int>(pool.size()) - 1;
      continue;
    }
    // Greedy best-fit reuse. Strict <: a storage last read by this very kernel must
    // not be handed to its output — kernels are not in-place (a conv output element
    // reads a neighborhood of inputs), so aliasing input and output corrupts results.
    int best = -1;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].free_after < gi && pool[i].bytes >= bytes) {
        if (best < 0 || pool[static_cast<size_t>(best)].bytes > pool[i].bytes) {
          best = static_cast<int>(i);
        }
      }
    }
    if (best < 0) {
      // Allow growing a free slot when nothing fits.
      for (size_t i = 0; i < pool.size(); ++i) {
        if (pool[i].free_after < gi) {
          best = static_cast<int>(i);
          pool[i].bytes = std::max(pool[i].bytes, bytes);
          break;
        }
      }
    }
    if (best < 0) {
      pool.push_back(Storage{bytes, -1});
      best = static_cast<int>(pool.size()) - 1;
    }
    pool[static_cast<size_t>(best)].free_after = last_read[static_cast<size_t>(node.id)];
    plan.storage_id[static_cast<size_t>(node.id)] = best;
  }
  for (const Storage& s : pool) {
    plan.storage_bytes.push_back(s.bytes);
    plan.planned_bytes += s.bytes;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Layout transformation (simplified NCHW -> NCHW[c] blocking marker)
// ---------------------------------------------------------------------------

int AlterLayout(Graph* g, const Target& target, int block_c) {
  if (target.kind != TargetKind::kCpu) {
    return 0;
  }
  int transformed = 0;
  for (int id = 0; id < g->num_nodes(); ++id) {
    Node& node = g->node(id);
    if (node.op != "conv2d") {
      continue;
    }
    const Node& data = g->node(node.inputs[0]);
    if (data.shape[1] % block_c != 0 || node.shape[1] % block_c != 0) {
      continue;
    }
    // Mark the node as blocked; schedules read this to vectorize over the c-block.
    node.attrs["layout_blocked_c"] = block_c;
    ++transformed;
  }
  return transformed;
}

}  // namespace graph
}  // namespace tvmcpp
