// Static analysis of lowered loop programs.
//
// Produces the quantities both the machine models (src/sim/machine.h) and the ML cost
// model's feature extraction (Figure 13) need: per-buffer access counts and touched
// bytes at every loop level, arithmetic op counts, thread structure, and annotations.
#ifndef SRC_SIM_ANALYSIS_H_
#define SRC_SIM_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/lower/lower.h"

namespace tvmcpp {

// Statistics for one buffer (external argument or internal allocation).
struct BufferStats {
  std::string name;
  const VarNode* var = nullptr;
  DataType dtype;
  std::string scope = "global";   // "global", "shared", "local", accelerator scopes
  int64_t size_elements = -1;     // -1 if unknown (external args get set by the caller)
  int64_t loads = 0;              // dynamic load count
  int64_t stores = 0;             // dynamic store count
  int64_t unique_elements = 0;    // approx. distinct elements touched
  int64_t innermost_stride = -1;  // element stride of the innermost loop var (-1 unknown)
  int64_t thread_stride = -1;     // stride w.r.t. threadIdx.x (-1 if no thread loops)
};

// Feature row: touched memory per buffer at one loop level (the Figure 13 table).
struct LoopBufferTouch {
  std::string buffer;
  int64_t elements_per_iteration = 0;  // distinct elements touched by one iteration
  int64_t accesses_per_iteration = 0;
};

struct LoopStats {
  std::string var_name;
  int64_t extent = 1;
  ForType for_type = ForType::kSerial;
  std::string thread_tag;
  int depth = 0;
  std::vector<LoopBufferTouch> touches;
};

struct ProgramStats {
  double flops = 0;           // floating-point ops (FMA = 2)
  double int_ops = 0;
  double special_ops = 0;     // exp/tanh/... weighted
  int64_t total_loads = 0;
  int64_t total_stores = 0;
  int64_t loop_iterations = 0;  // total dynamic loop iterations (loop overhead proxy)
  int64_t sync_count = 0;       // dynamic barrier executions
  int64_t branch_count = 0;     // dynamic if evaluations

  // Thread structure (products of bound extents; 1 when absent).
  int64_t grid_threads = 1;    // blockIdx.*
  int64_t block_threads = 1;   // threadIdx.*
  int64_t virtual_threads = 1; // vthread

  bool has_vectorized = false;
  bool has_parallel = false;
  bool has_unrolled = false;
  int64_t parallel_extent = 1;  // product of kParallel loop extents
  int64_t vector_extent = 1;    // extent of innermost vectorized loop

  std::map<std::string, int64_t> alloc_bytes_by_scope;

  std::vector<BufferStats> buffers;
  std::vector<LoopStats> loops;

  const BufferStats* FindBuffer(const VarNode* v) const {
    for (const BufferStats& b : buffers) {
      if (b.var == v) {
        return &b;
      }
    }
    return nullptr;
  }
};

// Analyzes `func` (external args registered from func.args).
ProgramStats AnalyzeProgram(const LoweredFunc& func);

}  // namespace tvmcpp

#endif  // SRC_SIM_ANALYSIS_H_
