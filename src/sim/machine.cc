#include "src/sim/machine.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

namespace tvmcpp {

namespace {

// Estimated DRAM traffic using a tiling-aware working-set model.
//
// For each loop level we know the bytes each buffer touches in one iteration (from the
// analysis). Walking root-to-leaf along each loop path, the first level whose combined
// working set fits in `cache_bytes` is where reuse is captured: traffic for a buffer is
// (iterations of loops outside that level) x (bytes it touches per iteration). Buffers
// with no such level stream every access; programs that fit entirely pay compulsory
// traffic only.
double EstimateDramTraffic(const ProgramStats& stats, int64_t cache_bytes) {
  std::unordered_map<std::string, int> elem_bytes;
  std::unordered_map<std::string, double> compulsory;
  std::unordered_map<std::string, double> stream_bytes;
  std::unordered_map<std::string, bool> is_global;
  for (const BufferStats& b : stats.buffers) {
    elem_bytes[b.name] = (b.dtype.bits() + 7) / 8;
    compulsory[b.name] =
        static_cast<double>(b.unique_elements) * ((b.dtype.bits() + 7) / 8);
    stream_bytes[b.name] =
        static_cast<double>(b.loads + b.stores) * ((b.dtype.bits() + 7) / 8);
    is_global[b.name] = b.scope == "global";
  }

  // Reconstruct loop paths from the pre-order (depth-annotated) loop list.
  std::unordered_map<std::string, double> traffic;  // per buffer, best (lowest) estimate
  std::vector<const LoopStats*> path;
  std::vector<double> outer_iters;  // product of extents of loops above path[i]
  for (const LoopStats& ls : stats.loops) {
    while (!path.empty() && path.back()->depth >= ls.depth) {
      path.pop_back();
      outer_iters.pop_back();
    }
    double outside = path.empty() ? 1.0 : outer_iters.back() * path.back()->extent;
    path.push_back(&ls);
    outer_iters.push_back(outside);

    // Working set of one iteration of this loop.
    double ws = 0;
    for (const LoopBufferTouch& t : ls.touches) {
      ws += static_cast<double>(t.elements_per_iteration) * elem_bytes[t.buffer];
    }
    if (ws <= static_cast<double>(cache_bytes)) {
      // Reuse captured here: each buffer pays its per-iteration bytes once per iteration
      // of this loop (including this loop's own trips).
      double iters = outside * static_cast<double>(ls.extent);
      for (const LoopBufferTouch& t : ls.touches) {
        if (!is_global[t.buffer]) {
          continue;
        }
        double bytes = iters * static_cast<double>(t.elements_per_iteration) *
                       elem_bytes[t.buffer];
        bytes = std::max(bytes, compulsory[t.buffer]);
        auto it = traffic.find(t.buffer);
        if (it == traffic.end() || bytes < it->second) {
          traffic[t.buffer] = bytes;
        }
      }
    }
  }
  double total = 0;
  for (const auto& [name, global] : is_global) {
    if (!global) {
      continue;
    }
    auto it = traffic.find(name);
    if (it != traffic.end()) {
      total += it->second;
    } else {
      // Never fits: every access goes to DRAM (streaming), floor at compulsory.
      total += std::max(stream_bytes[name], compulsory[name]);
    }
  }
  return total;
}

}  // namespace

SimCost EstimateCpuCost(const Target& t, const ProgramStats& stats) {
  SimCost c;
  double clock = t.clock_ghz * 1e9;

  int64_t parallel = stats.has_parallel
                         ? std::min<int64_t>(t.num_cores, stats.parallel_extent)
                         : 1;
  double ops_per_cycle =
      stats.has_vectorized
          ? t.flops_per_cycle_per_core *
                std::min<double>(1.0, static_cast<double>(stats.vector_extent) /
                                          t.vector_lanes)
          : 2.0;  // scalar FMA issue
  double useful_ops = stats.flops + stats.int_ops * 0.5 + stats.special_ops;
  c.flops = stats.flops;
  c.compute_seconds = useful_ops / (clock * ops_per_cycle * static_cast<double>(parallel));

  c.dram_bytes = EstimateDramTraffic(stats, t.l2_bytes);
  double dram_s = c.dram_bytes / (t.dram_gbps * 1e9);
  // L1/L2 access bandwidth: every dynamic access moves elem bytes through the cache port.
  double access_bytes = 0;
  for (const BufferStats& b : stats.buffers) {
    access_bytes += static_cast<double>(b.loads + b.stores) * ((b.dtype.bits() + 7) / 8);
  }
  double port_bytes_per_cycle = stats.has_vectorized ? 32.0 : 8.0;
  double cache_s =
      access_bytes / (clock * port_bytes_per_cycle * static_cast<double>(parallel));
  c.memory_seconds = std::max(dram_s, cache_s);

  // Loop/branch overhead: ~2 cycles per iteration, amortized by unrolling upstream.
  c.overhead_seconds = (static_cast<double>(stats.loop_iterations) * 2.0 +
                        static_cast<double>(stats.branch_count) * 3.0) /
                       (clock * static_cast<double>(parallel));

  c.seconds = std::max(c.compute_seconds, c.memory_seconds) + c.overhead_seconds + 2e-6;
  return c;
}

SimCost EstimateGpuCost(const Target& t, const ProgramStats& stats) {
  SimCost c;
  double clock = t.clock_ghz * 1e9;
  int64_t block = std::max<int64_t>(stats.block_threads, 1);
  int64_t grid = std::max<int64_t>(stats.grid_threads, 1);

  if (block > t.max_threads_per_block) {
    c.feasible = false;
    c.infeasible_reason = "block exceeds max threads";
    c.seconds = 1.0;
    return c;
  }
  int64_t shared_bytes = 0;
  for (const auto& [scope, bytes] : stats.alloc_bytes_by_scope) {
    if (scope == "shared") {
      shared_bytes += bytes;
    }
  }
  if (t.shared_mem_bytes > 0 && shared_bytes > t.shared_mem_bytes) {
    c.feasible = false;
    c.infeasible_reason = "shared memory exceeded";
    c.seconds = 1.0;
    return c;
  }

  // Occupancy: small blocks waste warp slots; few blocks underuse SMs.
  double warp_eff = std::min(
      1.0, static_cast<double>(block) / static_cast<double>(t.warp_size * 4));
  double sm_eff =
      std::min(1.0, static_cast<double>(grid) / static_cast<double>(t.num_sms));
  double occupancy = std::max(0.05, warp_eff * sm_eff);

  c.flops = stats.flops;
  // Integer guard/index arithmetic is cheap on GPUs (predication, dual-issue).
  double useful_ops = stats.flops + stats.int_ops * 0.05 + stats.special_ops;
  double peak_ops = clock * t.flops_per_cycle_per_sm * t.num_sms;
  c.compute_seconds = useful_ops / (peak_ops * occupancy);

  // Global traffic: working-set model over the loop structure (L2 captures block-level
  // reuse), amplified by the worst coalescing stride among heavily-read buffers.
  bool mali_like = t.shared_mem_bytes == 0;
  double global_bytes = EstimateDramTraffic(stats, t.l2_bytes);
  double worst_amp = 1.0;
  double total_loads = static_cast<double>(std::max<int64_t>(stats.total_loads, 1));
  double shared_access_bytes = 0;
  for (const BufferStats& b : stats.buffers) {
    double bytes = static_cast<double>(b.loads + b.stores) * ((b.dtype.bits() + 7) / 8);
    if (b.scope == "global") {
      if ((b.thread_stride > 1 || b.thread_stride < 0) &&
          static_cast<double>(b.loads) > 0.1 * total_loads) {
        worst_amp = std::max(
            worst_amp, std::min<double>(static_cast<double>(std::abs(b.thread_stride)), 8.0));
      }
    } else if (b.scope == "shared") {
      // Warp-level broadcast (thread-invariant reads) is served in one transaction.
      double eff = b.thread_stride == 0 ? 1.0 / static_cast<double>(t.warp_size) : 1.0;
      shared_access_bytes += bytes * eff;
    }
  }
  global_bytes *= worst_amp;
  c.dram_bytes = global_bytes;
  double dram_s = global_bytes / (t.dram_gbps * 1e9);
  // Shared memory bandwidth: 128 bytes/cycle/SM; on Mali there is no fast shared path,
  // so staging buys nothing (accesses cost like L2).
  double shared_bw = mali_like ? t.dram_gbps * 2e9
                               : clock * 128.0 * static_cast<double>(t.num_sms);
  double shared_s = shared_access_bytes / shared_bw;
  c.memory_seconds = std::max(dram_s, shared_s);

  // Barrier + launch overhead.
  double sync_s = static_cast<double>(stats.sync_count) * 24.0 /
                  (clock * static_cast<double>(t.num_sms) *
                   std::max(1.0, static_cast<double>(block) / t.warp_size));
  c.overhead_seconds = sync_s + 5e-6;

  c.seconds = std::max(c.compute_seconds, c.memory_seconds) + c.overhead_seconds;
  return c;
}

SimCost EstimateCost(const Target& target, const LoweredFunc& func) {
  ProgramStats stats = AnalyzeProgram(func);
  switch (target.kind) {
    case TargetKind::kGpu:
      return EstimateGpuCost(target, stats);
    case TargetKind::kCpu:
    case TargetKind::kAccel:
      return EstimateCpuCost(target, stats);
  }
  return SimCost{};
}

}  // namespace tvmcpp
