#include "src/sim/analysis.h"

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"

namespace tvmcpp {

namespace {

struct LoopFrame {
  const VarNode* var;
  int64_t extent;
  ForType for_type;
  std::string thread_tag;
  size_t stats_index;  // index into ProgramStats::loops
};

// Cost weights for arithmetic expressions.
struct OpCount {
  double flops = 0;
  double int_ops = 0;
  double special = 0;
  int64_t loads = 0;
};

class Analyzer2 : public StmtVisitor {
 public:
  explicit Analyzer2(const LoweredFunc& func) {
    for (const BufferArg& arg : func.args) {
      BufferStats b;
      b.name = arg.name;
      b.var = arg.var.get();
      b.dtype = arg.dtype;
      b.scope = "global";
      int64_t n = 1;
      for (int64_t d : arg.shape) {
        n *= d;
      }
      b.size_elements = n;
      stats_.buffers.push_back(b);
      index_[arg.var.get()] = stats_.buffers.size() - 1;
    }
  }

  ProgramStats Finish(const Stmt& body) {
    VisitStmt(body);
    for (BufferStats& b : stats_.buffers) {
      if (b.size_elements >= 0) {
        b.unique_elements = std::min(b.unique_elements, b.size_elements);
      }
    }
    return std::move(stats_);
  }

 protected:
  void VisitAllocate(const AllocateNode* op) override {
    BufferStats b;
    b.name = op->buffer_var->name;
    b.var = op->buffer_var.get();
    b.dtype = op->dtype;
    b.scope = op->scope;
    int64_t n = 1;
    for (const Expr& e : op->extents) {
      n *= ConstOr(e, 1);
    }
    b.size_elements = n;
    stats_.buffers.push_back(b);
    index_[op->buffer_var.get()] = stats_.buffers.size() - 1;
    stats_.alloc_bytes_by_scope[op->scope] +=
        n * (op->dtype.bits() + 7) / 8 * Multiplier(/*count_threads=*/false);
    VisitStmt(op->body);
  }

  void VisitFor(const ForNode* op) override {
    int64_t extent = ConstOr(op->extent, 1);
    LoopStats ls;
    ls.var_name = op->loop_var->name;
    ls.extent = extent;
    ls.for_type = op->for_type;
    ls.thread_tag = op->thread_tag;
    ls.depth = static_cast<int>(loop_stack_.size());
    stats_.loops.push_back(ls);
    size_t stats_index = stats_.loops.size() - 1;

    switch (op->for_type) {
      case ForType::kThreadBinding:
        if (op->thread_tag.rfind("blockIdx", 0) == 0) {
          stats_.grid_threads *= extent;
        } else {
          stats_.block_threads *= extent;
        }
        break;
      case ForType::kVThread:
        stats_.virtual_threads *= extent;
        break;
      case ForType::kParallel:
        stats_.has_parallel = true;
        stats_.parallel_extent *= extent;
        break;
      case ForType::kVectorized:
        stats_.has_vectorized = true;
        stats_.vector_extent = extent;
        break;
      case ForType::kUnrolled:
        stats_.has_unrolled = true;
        break;
      default:
        break;
    }
    if (op->for_type != ForType::kUnrolled && op->for_type != ForType::kVectorized) {
      stats_.loop_iterations += Multiplier(true) * extent;
    }
    loop_stack_.push_back(LoopFrame{op->loop_var.get(), extent, op->for_type,
                                    op->thread_tag, stats_index});
    VisitStmt(op->body);
    loop_stack_.pop_back();
  }

  void VisitIfThenElse(const IfThenElseNode* op) override {
    stats_.branch_count += Multiplier(true);
    // Both branches analyzed; costs averaged by assuming the guard mostly passes.
    StmtVisitor::VisitIfThenElse(op);
  }

  void VisitStore(const StoreNode* op) override {
    int64_t mult = Multiplier(true);
    RecordAccess(op->buffer_var.get(), op->index, mult, /*is_store=*/true);
    OpCount c = CountOps(op->value);
    stats_.flops += c.flops * static_cast<double>(mult);
    stats_.int_ops += c.int_ops * static_cast<double>(mult);
    stats_.special_ops += c.special * static_cast<double>(mult);
    CollectLoads(op->value, mult);
  }

  void VisitEvaluate(const EvaluateNode* op) override {
    if (op->value->kind != ExprKind::kCall) {
      return;
    }
    const auto* call = static_cast<const CallNode*>(op->value.get());
    if (call->name == kSyncIntrin) {
      stats_.sync_count += Multiplier(true);
      return;
    }
    if (call->call_type == CallType::kIntrinsic) {
      RecordTensorIntrin(call);
    }
  }

 private:
  int64_t ConstOr(const Expr& e, int64_t fallback) const {
    Expr s = Simplify(e);
    int64_t v;
    return is_const_int(s, &v) ? v : fallback;
  }

  // Product of enclosing loop extents. Thread-bound loops always count (the work exists,
  // it is just spread across parallel units; models divide by parallelism separately).
  int64_t Multiplier(bool count_threads) const {
    int64_t m = 1;
    for (const LoopFrame& f : loop_stack_) {
      if (!count_threads && f.for_type == ForType::kThreadBinding) {
        continue;
      }
      m *= f.extent;
    }
    return m;
  }

  // Element stride of `index` w.r.t. `v` (other loop vars zeroed); -1 if non-constant.
  int64_t StrideOf(const Expr& index, const VarNode* v) const {
    VarMap zero, one;
    for (const LoopFrame& f : loop_stack_) {
      zero[f.var] = make_int(0);
      one[f.var] = make_int(f.var == v ? 1 : 0);
    }
    Expr d = Simplify(sub(Substitute(index, one), Substitute(index, zero)));
    int64_t s;
    return is_const_int(d, &s) ? s : -1;
  }

  void RecordAccess(const VarNode* buf, const Expr& index, int64_t mult, bool is_store) {
    auto it = index_.find(buf);
    if (it == index_.end()) {
      // Unknown buffer (should not happen); register lazily.
      BufferStats b;
      b.name = buf->name;
      b.var = buf;
      stats_.buffers.push_back(b);
      it = index_.emplace(buf, stats_.buffers.size() - 1).first;
    }
    BufferStats& b = stats_.buffers[it->second];
    if (is_store) {
      b.stores += mult;
    } else {
      b.loads += mult;
    }
    // Strides per loop var.
    std::vector<int64_t> strides(loop_stack_.size());
    for (size_t i = 0; i < loop_stack_.size(); ++i) {
      strides[i] = StrideOf(index, loop_stack_[i].var);
    }
    if (!loop_stack_.empty()) {
      // Innermost non-thread loop stride.
      for (size_t i = loop_stack_.size(); i-- > 0;) {
        if (loop_stack_[i].for_type != ForType::kThreadBinding) {
          b.innermost_stride = strides[i];
          break;
        }
      }
      for (size_t i = 0; i < loop_stack_.size(); ++i) {
        if (loop_stack_[i].thread_tag == "threadIdx.x") {
          b.thread_stride = strides[i];
        }
      }
    }
    // Unique elements touched by this access across the whole nest.
    int64_t unique = 1;
    for (size_t i = 0; i < loop_stack_.size(); ++i) {
      if (strides[i] != 0) {
        unique *= loop_stack_[i].extent;
      }
    }
    b.unique_elements += unique;
    // Per-loop-level touch features: elements per one iteration of each enclosing loop.
    int64_t inner_unique = 1;
    for (size_t i = loop_stack_.size(); i-- > 0;) {
      LoopStats& ls = stats_.loops[loop_stack_[i].stats_index];
      int64_t inner_accesses = 1;
      for (size_t j = i + 1; j < loop_stack_.size(); ++j) {
        inner_accesses *= loop_stack_[j].extent;
      }
      AddTouch(&ls, b.name, inner_unique, inner_accesses);
      if (strides[i] != 0) {
        inner_unique *= loop_stack_[i].extent;
      }
    }
  }

  static void AddTouch(LoopStats* ls, const std::string& buffer, int64_t elements,
                       int64_t accesses) {
    for (LoopBufferTouch& t : ls->touches) {
      if (t.buffer == buffer) {
        t.elements_per_iteration += elements;
        t.accesses_per_iteration += accesses;
        return;
      }
    }
    ls->touches.push_back(LoopBufferTouch{buffer, elements, accesses});
  }

  void CollectLoads(const Expr& e, int64_t mult) {
    PostOrderVisit(e, [&](const Expr& x) {
      if (x->kind == ExprKind::kLoad) {
        const auto* n = static_cast<const LoadNode*>(x.get());
        RecordAccess(n->buffer_var.get(), n->index, mult, /*is_store=*/false);
        stats_.total_loads += mult;
      }
    });
    stats_.total_stores += mult;
  }

  static OpCount CountOps(const Expr& e) {
    OpCount c;
    PostOrderVisit(e, [&](const Expr& x) {
      switch (x->kind) {
        case ExprKind::kAdd:
        case ExprKind::kSub:
        case ExprKind::kMul:
        case ExprKind::kDiv:
        case ExprKind::kMin:
        case ExprKind::kMax:
          if (x->dtype.is_float()) {
            c.flops += 1;
          } else {
            c.int_ops += 1;
          }
          break;
        case ExprKind::kCall: {
          const auto* call = static_cast<const CallNode*>(x.get());
          if (call->name == "exp" || call->name == "log" || call->name == "tanh" ||
              call->name == "sigmoid" || call->name == "sqrt") {
            c.special += 8;
          } else if (call->name == "popcount") {
            c.int_ops += 1;
          }
          break;
        }
        default:
          break;
      }
    });
    return c;
  }

  // Tensor intrinsic accounting via the lowering ABI (see lower.cc MakeIntrinCall).
  void RecordTensorIntrin(const CallNode* call) {
    int num_buffers = 0;
    double flops_per_point = 0;
    if (call->name == kFillZeroIntrin) {
      num_buffers = 1;
    } else if (call->name == kDmaCopyIntrin) {
      num_buffers = 2;
    } else if (call->name == kGemmIntrin || call->name == "arm_bitserial_gemv") {
      num_buffers = 3;
      flops_per_point = 2;
    } else {
      return;
    }
    int total = static_cast<int>(call->args.size());
    int nt = (total - 2 * num_buffers) / (num_buffers + 1);
    if (num_buffers * (2 + nt) + nt != total) {
      return;
    }
    int64_t points = 1;
    for (int d = 0; d < nt; ++d) {
      points *= ConstOr(call->args[static_cast<size_t>(num_buffers * (2 + nt) + d)], 1);
    }
    int64_t mult = Multiplier(true);
    stats_.flops += flops_per_point * static_cast<double>(points * mult);
    // Buffer traffic: each buffer touched over its non-zero-stride dims.
    int pos = 0;
    for (int bidx = 0; bidx < num_buffers; ++bidx) {
      const Expr& handle = call->args[static_cast<size_t>(pos)];
      pos += 2;  // skip offset
      int64_t unique = 1;
      for (int d = 0; d < nt; ++d) {
        int64_t stride = ConstOr(call->args[static_cast<size_t>(pos + d)], 0);
        int64_t ext = ConstOr(call->args[static_cast<size_t>(num_buffers * (2 + nt) + d)], 1);
        if (stride != 0) {
          unique *= ext;
        }
      }
      pos += nt;
      if (handle->kind == ExprKind::kVar) {
        auto it = index_.find(static_cast<const VarNode*>(handle.get()));
        if (it != index_.end()) {
          BufferStats& b = stats_.buffers[it->second];
          if (bidx == 0) {
            b.stores += unique * mult;
          } else {
            b.loads += unique * mult;
          }
          b.unique_elements += unique;
        }
      }
    }
  }

  ProgramStats stats_;
  std::unordered_map<const VarNode*, size_t> index_;
  std::vector<LoopFrame> loop_stack_;
};

}  // namespace

ProgramStats AnalyzeProgram(const LoweredFunc& func) {
  Analyzer2 a(func);
  return a.Finish(func.body);
}

}  // namespace tvmcpp
