// Analytic machine models: estimate the runtime of a lowered program on a target.
//
// These replace the paper's physical testbeds (see DESIGN.md). They are driven entirely
// by the structure of the generated loop program (tiling, vectorization, thread binding,
// memory scopes, coalescing strides), so schedule decisions move the estimates exactly
// the way they move real hardware: better locality -> less DRAM traffic, cooperative
// shared-memory staging -> fewer global loads, vectorization -> higher issue rate, etc.
#ifndef SRC_SIM_MACHINE_H_
#define SRC_SIM_MACHINE_H_

#include <memory>
#include <string>

#include "src/lower/lower.h"
#include "src/runtime/target.h"
#include "src/sim/analysis.h"

namespace tvmcpp {

// Cost breakdown of one function execution (used for roofline plots, Figure 10).
struct SimCost {
  double seconds = 0;
  double compute_seconds = 0;
  double memory_seconds = 0;
  double overhead_seconds = 0;
  double flops = 0;          // useful arithmetic
  double dram_bytes = 0;     // estimated off-chip traffic
  bool feasible = true;      // false when the program violates hardware limits
  std::string infeasible_reason;

  double GopsPerSecond() const { return seconds > 0 ? flops / seconds * 1e-9 : 0; }
  double OperationalIntensity() const { return dram_bytes > 0 ? flops / dram_bytes : 0; }
};

// Estimates the cost of `func` on `target`. Dispatches on target.kind.
SimCost EstimateCost(const Target& target, const LoweredFunc& func);

// Variants taking precomputed stats (the tuner reuses one analysis per candidate).
SimCost EstimateCpuCost(const Target& target, const ProgramStats& stats);
SimCost EstimateGpuCost(const Target& target, const ProgramStats& stats);

}  // namespace tvmcpp

#endif  // SRC_SIM_MACHINE_H_
