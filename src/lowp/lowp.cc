#include "src/lowp/lowp.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/ir/simplify.h"
#include "src/topi/nn.h"

namespace tvmcpp {
namespace lowp {

namespace {

int64_t Dim(const Tensor& t, int i) { return get_const_int(Simplify(t.shape()[i])); }

}  // namespace

Tensor BitserialConv2d(const Tensor& data, const Tensor& kernel, int stride, int pad,
                       int activation_bits, const std::string& name) {
  int64_t in_c = Dim(data, 1), in_h = Dim(data, 2), in_w = Dim(data, 3);
  int64_t out_c = Dim(kernel, 0), kh = Dim(kernel, 2), kw = Dim(kernel, 3);
  int64_t out_h = topi::ConvOutDim(in_h, kh, stride, pad);
  int64_t out_w = topi::ConvOutDim(in_w, kw, stride, pad);
  (void)in_w;
  Tensor padded = topi::PadNCHW(data, pad, name + ".pad");
  IterVar rc = reduce_axis(Range(make_int(0), make_int(in_c)), name + ".rc");
  IterVar ry = reduce_axis(Range(make_int(0), make_int(kh)), name + ".ry");
  IterVar rx = reduce_axis(Range(make_int(0), make_int(kw)), name + ".rx");
  IterVar rb = reduce_axis(Range(make_int(0), make_int(activation_bits)), name + ".rb");
  return compute(
      {data.shape()[0], make_int(out_c), make_int(out_h), make_int(out_w)},
      [&](const std::vector<Var>& i) {
        Expr h = i[2] * make_int(stride) + ry->var;
        Expr w = i[3] * make_int(stride) + rx->var;
        // Bit-plane rb of the activation (values stored widened in int8).
        Expr act = cast(DataType::Int32(), padded({i[0], rc->var, h, w}));
        Expr bit = (act / (1 << 0)) % 2;
        // Shifted plane: (act >> rb) & 1, realized with div/mod by 2^rb.
        Expr shifted = act;
        // rb is a loop var; build (act / 2^rb) % 2 via select over the small bit count.
        Expr plane = bit;
        for (int b = 1; b < activation_bits; ++b) {
          plane = select(eq(rb->var, make_int(b)), (act / (1 << b)) % 2, plane);
        }
        (void)shifted;
        // Bipolar weight in {0,1} meaning {-1,+1}: contribution = plane * (2w - 1).
        Expr wgt = cast(DataType::Int32(), kernel({i[1], rc->var, ry->var, rx->var}));
        Expr contrib = (plane * (wgt * 2 - 1)) * (1 << 0);
        // Weight by the bit significance 2^rb.
        Expr weight_pow = make_int(1);
        for (int b = 1; b < activation_bits; ++b) {
          weight_pow = select(eq(rb->var, make_int(b)), make_int(1 << b), weight_pow);
        }
        return sum(contrib * weight_pow, {rc, ry, rx, rb});
      },
      name);
}

TensorIntrinPtr DeclArmBitserialGemv(int oc_block, int k_block) {
  Tensor w = placeholder({make_int(oc_block), make_int(k_block)}, DataType::Int8(), "w");
  Tensor x = placeholder({make_int(k_block)}, DataType::Int8(), "x");
  IterVar k = reduce_axis(Range(make_int(0), make_int(k_block)), "k");
  Tensor y = compute({make_int(oc_block)},
                     [&](const std::vector<Var>& i) {
                       return sum(cast(DataType::Int32(), w({i[0], k->var})) *
                                      cast(DataType::Int32(), x({k->var})),
                                  {k});
                     },
                     "bitserial_gemv");
  return decl_tensor_intrin(y, "arm_bitserial_gemv", kFillZeroIntrin,
                            "arm_bitserial_gemv");
}

topi::ConfigSpace BitserialScheduleSpace(const topi::OpWorkload& wl) {
  topi::ConfigSpace space;
  auto divisors = [](int64_t extent, int64_t lo, int64_t hi) {
    std::vector<int64_t> out;
    for (int64_t d = lo; d <= std::min(extent, hi); ++d) {
      if (extent % d == 0) {
        out.push_back(d);
      }
    }
    if (out.empty()) {
      out.push_back(1);
    }
    return out;
  };
  int64_t out_w = topi::ConvOutDim(wl.w, wl.k, wl.stride, wl.pad);
  space.knobs = {
      {"tile_oc", divisors(wl.oc, 1, 16)},
      {"tile_ow", divisors(out_w, 1, 16)},
      {"parallel", {0, 1}},
      {"unroll", {0, 1}},
  };
  return space;
}

Schedule ApplyBitserialSchedule(const topi::OpWorkload& wl, const Tensor& output,
                                const topi::Config& config) {
  Schedule s = create_schedule({output});
  // Inline the pad stage.
  for (const Tensor& t : output.op()->InputTensors()) {
    if (t.name().find(".pad") != std::string::npos) {
      (*s)[t]->compute_inline();
    }
  }
  Stage so = (*s)[output];
  auto at = [&](const std::string& k, int64_t d) {
    auto it = config.find(k);
    return it == config.end() ? d : it->second;
  };
  IterVar oc = so->leaf_iter_vars[1];
  IterVar ow = so->leaf_iter_vars[3];
  IterVar oco, oci, owo, owi;
  so->split(oc, at("tile_oc", 4), &oco, &oci);
  so->split(ow, at("tile_ow", 4), &owo, &owi);
  so->reorder({so->leaf_iter_vars[0], oco, so->leaf_iter_vars[3], owo, oci, owi});
  if (at("parallel", 1) != 0) {
    so->parallel(oco);
  }
  if (at("unroll", 0) != 0) {
    so->unroll(owi);
  }
  return s;
}

double EstimateBitserialSeconds(const topi::OpWorkload& wl, int activation_bits,
                                int weight_bits, int threads, bool tvm_optimized) {
  // Bit-serial work: ops = flops/2 * activation_bits * weight_bits bitwise-and+popcount
  // steps, processed 128 bits per NEON op.
  double macs = wl.Flops() / 2.0;
  double bit_ops = macs * activation_bits * weight_bits;
  double lanes = 128.0;  // NEON bit lanes
  double ops_per_cycle = lanes / 2.0;  // and + popcount pipelined
  double clock = 1.2e9;
  // TVM's tensorized microkernel reaches higher utilization via the schedule search;
  // 1x1 s2 layers lose less because TVM still tiles them well.
  double eff = tvm_optimized ? (wl.k == 1 ? 0.45 : 0.55) : 0.35;
  double compute = bit_ops / (ops_per_cycle * clock * eff * threads);
  // Packing/unpacking overhead (amortized, worse for low-intensity 1x1).
  double pack = macs / (clock * 8.0 * threads) * (wl.k == 1 ? 1.2 : 0.3);
  return compute + pack + 5e-6;
}

}  // namespace lowp
}  // namespace tvmcpp
