// Ultra low-precision operators (Section 6.2): bit-serial convolution for sub-8-bit
// fixed-point types, built on a bit-packed popcount matrix-vector microkernel exposed to
// the scheduler as an ARM tensor intrinsic.
//
// A W-bit activation x A 1-bit weight product decomposes into bit-planes:
//   dot(x, w) = sum_b 2^b * popcount(bits_b(x) & w+) - ... (signed handling folded into
//   two popcounts). We implement the unsigned-activation/bipolar-weight variant used by
//   the paper's 2-bit activation x 1-bit weight ResNet experiments.
#ifndef SRC_LOWP_LOWP_H_
#define SRC_LOWP_LOWP_H_

#include <string>

#include "src/schedule/schedule.h"
#include "src/te/tensor.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace lowp {

// Bit-serial conv2d over NCHW int8 data holding `activation_bits`-wide values and
// bipolar 1-bit weights stored as {0,1}. Accumulates in int32.
// The compute decomposes into per-bit-plane multiply-accumulate so the tensorizer can
// map the inner microkernel onto `arm_bitserial_gemv`.
Tensor BitserialConv2d(const Tensor& data, const Tensor& kernel, int stride, int pad,
                       int activation_bits, const std::string& name = "bitserial_conv2d");

// Declares the ARM bit-serial matrix-vector tensor intrinsic covering an
// [oc_block x k_block] block (accumulating into progressively wider types, per the
// paper's microkernel description).
TensorIntrinPtr DeclArmBitserialGemv(int oc_block, int k_block);

// Schedule space + application for bit-serial conv on ARM CPUs.
// Knobs: tile_oc, tile_ow, parallel (multi-threading on/off), tensorize.
topi::ConfigSpace BitserialScheduleSpace(const topi::OpWorkload& wl);
Schedule ApplyBitserialSchedule(const topi::OpWorkload& wl, const Tensor& output,
                                const topi::Config& config);

// Estimated seconds of a bit-serial conv on an ARM target given threads (cost model
// shortcut used by the Figure 18 bench).
double EstimateBitserialSeconds(const topi::OpWorkload& wl, int activation_bits,
                                int weight_bits, int threads, bool tvm_optimized);

}  // namespace lowp
}  // namespace tvmcpp

#endif  // SRC_LOWP_LOWP_H_
