#include "src/topi/sparse.h"

#include <algorithm>
#include <vector>

#include "src/ir/simplify.h"
#include "src/ir/stmt.h"

namespace tvmcpp {
namespace topi {

namespace {

int64_t Dim(const Tensor& t, int i) { return get_const_int(Simplify(t.shape()[i])); }

}  // namespace

Tensor SparseDense(const Tensor& x, const Tensor& w_data, const Tensor& w_indices,
                   const Tensor& w_indptr, int64_t max_row_nnz,
                   const std::string& name) {
  int64_t batch = Dim(x, 0);
  int64_t out_dim = Dim(w_indptr, 0) - 1;
  DataType dt = x.dtype();
  IterVar p = reduce_axis(Range(make_int(0), make_int(std::max<int64_t>(max_row_nnz, 0))),
                          name + ".p");
  return compute(
      {make_int(batch), make_int(out_dim)},
      [&](const std::vector<Var>& i) {
        Expr row_start = w_indptr({i[1]});
        Expr row_end = w_indptr({i[1] + make_int(1)});
        Expr pos = row_start + p->var;
        // Rows shorter than the ELL bound read the zero tail padding for the
        // guarded-off steps (in bounds by construction; see src/runtime/csr.h),
        // and the guard's exact-zero arm keeps the accumulation bitwise equal to
        // the dense reduction, whose dropped terms were exact zeros too.
        Expr term = w_data({pos}) * x({i[0], w_indices({pos})});
        return sum(if_then_else(lt(pos, row_end), term, make_zero(dt)), {p});
      },
      name);
}

LoweredFunc SpMMCSRRowBlocks(int64_t batch, int64_t in_dim, int64_t out_dim,
                             int64_t alloc_len, int64_t nblocks, DataType dtype,
                             const std::string& name) {
  DataType i32 = DataType::Int32();
  Var x = make_var("x", DataType::Handle());
  Var wd = make_var("w_data", DataType::Handle());
  Var wi = make_var("w_indices", DataType::Handle());
  Var wp = make_var("w_indptr", DataType::Handle());
  Var blocks = make_var("block_starts", DataType::Handle());
  Var out = make_var("out", DataType::Handle());

  Var b = make_var("b", i32);       // row block (kParallel)
  Var rb = make_var("rb", i32);     // row within the block
  Var n = make_var("n", i32);       // absolute output row (let-bound)
  Var m = make_var("m", i32);       // batch row
  Var q = make_var("q", i32);       // nonzero within the row
  Var pos = make_var("pos", i32);   // absolute CSR position (let-bound)

  Expr out_idx = m * make_int(out_dim) + n;
  // out[m, n] += data[pos] * x[m, indices[pos]]
  Stmt update = let_stmt(
      pos, load(i32, wp, n) + q,
      store(out,
            load(dtype, out, out_idx) +
                load(dtype, wd, pos) * load(dtype, x, m * make_int(in_dim) + load(i32, wi, pos)),
            out_idx));
  // Dynamic per-row trip count, loaded from indptr at loop entry.
  Stmt row_loop = for_stmt(q, make_int(0), load(i32, wp, n + make_int(1)) - load(i32, wp, n),
                           update, ForType::kSerial);
  Stmt per_row = seq({store(out, make_zero(dtype), out_idx), row_loop});
  Stmt batch_loop = for_stmt(m, make_int(0), make_int(batch), per_row, ForType::kSerial);
  // n = block_starts[b] + rb; the let keeps the VM's parallel-hazard scan aware
  // that the store index tracks the block variable, so the block loop stays
  // genuinely parallel instead of demoting to serial.
  Stmt rows = for_stmt(
      rb, make_int(0), load(i32, blocks, b + make_int(1)) - load(i32, blocks, b),
      let_stmt(n, load(i32, blocks, b) + rb, batch_loop), ForType::kSerial);
  Stmt body = for_stmt(b, make_int(0), make_int(nblocks), rows, ForType::kParallel);

  LoweredFunc f;
  f.name = name;
  f.args = {BufferArg{x, dtype, {batch * in_dim}, "x"},
            BufferArg{wd, dtype, {alloc_len}, "w_data"},
            BufferArg{wi, i32, {alloc_len}, "w_indices"},
            BufferArg{wp, i32, {out_dim + 1}, "w_indptr"},
            BufferArg{blocks, i32, {nblocks + 1}, "block_starts"},
            BufferArg{out, dtype, {batch * out_dim}, "out"}};
  f.body = body;
  return f;
}

}  // namespace topi
}  // namespace tvmcpp
