// The tensor-operator library (computes only; schedules live in schedules.h).
//
// All computes are declarative tensor expressions; layouts are NCHW unless noted.
#ifndef SRC_TOPI_NN_H_
#define SRC_TOPI_NN_H_

#include <string>
#include <vector>

#include "src/te/tensor.h"

namespace tvmcpp {
namespace topi {

// Zero-pads the spatial dims of NCHW data. Emitted as an explicit stage so schedules can
// inline it (CPU) or stage it into shared memory (GPU); conv reads it unguarded.
Tensor PadNCHW(const Tensor& data, int pad, const std::string& name = "pad");

// 2-D convolution, NCHW data [N, C, H, W], OIHW kernel [OC, IC, KH, KW].
// When pad > 0 the returned op reads an intermediate PadNCHW stage (its first input).
Tensor Conv2dNCHW(const Tensor& data, const Tensor& kernel, int stride, int pad,
                  const std::string& name = "conv2d");

// Depthwise 2-D convolution (channel multiplier 1), kernel [C, 1, KH, KW].
Tensor DepthwiseConv2dNCHW(const Tensor& data, const Tensor& kernel, int stride, int pad,
                           const std::string& name = "depthwise_conv2d");

// Transposed convolution (DCGAN generator layers), kernel [IC, OC, KH, KW].
Tensor Conv2dTransposeNCHW(const Tensor& data, const Tensor& kernel, int stride, int pad,
                           const std::string& name = "conv2d_transpose");

// Dense / fully connected: data [B, I], weight [O, I] -> [B, O].
Tensor Dense(const Tensor& data, const Tensor& weight, const std::string& name = "dense");

// Elementwise.
Tensor Relu(const Tensor& x, const std::string& name = "relu");
Tensor TanhOp(const Tensor& x, const std::string& name = "tanh");
Tensor SigmoidOp(const Tensor& x, const std::string& name = "sigmoid");
Tensor Add(const Tensor& a, const Tensor& b, const std::string& name = "add");
Tensor Mul(const Tensor& a, const Tensor& b, const std::string& name = "mul");
// Per-channel scale+shift on NCHW (inference-time batch norm).
Tensor BatchNorm(const Tensor& x, const Tensor& scale, const Tensor& shift,
                 const std::string& name = "batch_norm");
Tensor BiasAdd(const Tensor& x, const Tensor& bias, const std::string& name = "bias_add");

// Pooling on NCHW.
Tensor MaxPool2d(const Tensor& x, int kernel, int stride, int pad,
                 const std::string& name = "max_pool2d");
Tensor GlobalAvgPool(const Tensor& x, const std::string& name = "global_avg_pool");

// Shape ops.
Tensor Flatten(const Tensor& x, const std::string& name = "flatten");  // [N, C*H*W]
Tensor Softmax(const Tensor& x, const std::string& name = "softmax");  // over last dim of 2-D

// Output spatial size of a convolution-like op.
inline int64_t ConvOutDim(int64_t in, int64_t kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace topi
}  // namespace tvmcpp

#endif  // SRC_TOPI_NN_H_
