// Schedule templates with declared knobs (the paper's schedule-space templates,
// Section 5.1).
//
// A template exposes a ConfigSpace of knobs; ApplySchedule instantiates a concrete
// schedule for a knob assignment. The auto-tuner explores these spaces; graph-level
// compilation uses tuned or default configs.
#ifndef SRC_TOPI_SCHEDULES_H_
#define SRC_TOPI_SCHEDULES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/topi/nn.h"

namespace tvmcpp {
namespace topi {

// A knob assignment.
using Config = std::map<std::string, int64_t>;

struct KnobSpec {
  std::string name;
  std::vector<int64_t> choices;
};

// Cartesian space of knob choices, indexable in mixed radix.
struct ConfigSpace {
  std::vector<KnobSpec> knobs;

  int64_t size() const {
    int64_t n = 1;
    for (const KnobSpec& k : knobs) {
      n *= static_cast<int64_t>(k.choices.size());
    }
    return n;
  }

  Config At(int64_t index) const {
    Config c;
    for (const KnobSpec& k : knobs) {
      int64_t radix = static_cast<int64_t>(k.choices.size());
      c[k.name] = k.choices[static_cast<size_t>(index % radix)];
      index /= radix;
    }
    return c;
  }

  int64_t IndexOf(const Config& c) const {
    int64_t index = 0;
    for (size_t i = knobs.size(); i-- > 0;) {
      const KnobSpec& k = knobs[i];
      int64_t pos = 0;
      auto it = c.find(k.name);
      if (it != c.end()) {
        for (size_t j = 0; j < k.choices.size(); ++j) {
          if (k.choices[j] == it->second) {
            pos = static_cast<int64_t>(j);
            break;
          }
        }
      }
      index = index * static_cast<int64_t>(k.choices.size()) + pos;
    }
    return index;
  }
};

// A single-operator tuning workload (Table 2 rows are instances of this).
struct OpWorkload {
  std::string kind;  // "conv2d", "depthwise_conv2d", "dense", "conv2d_transpose",
                     // "sparse_dense"
  int n = 1;
  int h = 1, w = 1;   // spatial input
  int ic = 1, oc = 1;
  int k = 1;          // kernel size (or input dim for dense / sparse_dense)
  int stride = 1, pad = 0;
  // sparse_dense only: stored entries and densest row of the CSR weight. Appended
  // to Key() for that kind alone, so dense workload keys (and the key hashes
  // pinned by the tuning-cache tests) are unchanged.
  int64_t nnz = 0;
  int64_t max_row_nnz = 0;
  DataType dtype = DataType::Float32();

  std::string Key() const;
  double Flops() const;  // multiply-add counted as 2
};

// The op's tensors: inputs then output (in Lower() argument order).
struct BuiltOp {
  std::vector<Tensor> inputs;
  Tensor output;
  std::vector<Tensor> Args() const {
    std::vector<Tensor> a = inputs;
    a.push_back(output);
    return a;
  }
};

BuiltOp BuildOpCompute(const OpWorkload& wl);

// Knob space of the (target kind, op kind) master template.
ConfigSpace GetScheduleSpace(const OpWorkload& wl, const Target& target);

// Instantiates a schedule for `config`. `built` must come from BuildOpCompute.
Schedule ApplyOpSchedule(const OpWorkload& wl, const Target& target, const BuiltOp& built,
                         const Config& config);

// A reasonable untuned default config (median choices).
Config DefaultConfig(const ConfigSpace& space);

// --- Generic building blocks used by the graph compiler -----------------------------

// Schedules a fused group whose final output is `output` and whose (optional) reduction
// master is `master` (conv/dense); all other injective stages are inlined.
// Returns the schedule.
Schedule ScheduleFusedGroup(const Target& target, const std::vector<Tensor>& group_outputs,
                            const Tensor& master, const Config& config,
                            const OpWorkload* master_wl);

// Default injective schedule (elementwise/pool/softmax groups).
void ScheduleInjective(const Target& target, const Schedule& s, const Tensor& out);

}  // namespace topi
}  // namespace tvmcpp

#endif  // SRC_TOPI_SCHEDULES_H_
