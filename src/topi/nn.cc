#include "src/topi/nn.h"

#include <string>
#include <vector>

#include "src/ir/simplify.h"

namespace tvmcpp {
namespace topi {

namespace {

// Guarded (zero-padded) read of NCHW data at spatial position (h, w).
Expr PadRead(const Tensor& data, const Expr& n, const Expr& c, Expr h, Expr w, int64_t in_h,
             int64_t in_w) {
  Expr in_bounds = logic_and(logic_and(ge(h, make_int(0)), lt(h, make_int(in_h))),
                             logic_and(ge(w, make_int(0)), lt(w, make_int(in_w))));
  Expr hc = max(min(h, make_int(in_h - 1)), make_int(0));
  Expr wc = max(min(w, make_int(in_w - 1)), make_int(0));
  return if_then_else(in_bounds, data({n, c, hc, wc}), make_const(data.dtype(), 0));
}

int64_t Dim(const Tensor& t, int i) { return get_const_int(Simplify(t.shape()[i])); }

}  // namespace

Tensor PadNCHW(const Tensor& data, int pad, const std::string& name) {
  if (pad == 0) {
    return data;
  }
  int64_t in_h = Dim(data, 2), in_w = Dim(data, 3);
  return compute(
      {data.shape()[0], data.shape()[1], make_int(in_h + 2 * pad), make_int(in_w + 2 * pad)},
      [&](const std::vector<Var>& i) {
        Expr h = i[2] - make_int(pad);
        Expr w = i[3] - make_int(pad);
        return PadRead(data, i[0], i[1], h, w, in_h, in_w);
      },
      name);
}

Tensor Conv2dNCHW(const Tensor& data, const Tensor& kernel, int stride, int pad,
                  const std::string& name) {
  int64_t batch = Dim(data, 0), in_c = Dim(data, 1), in_h = Dim(data, 2), in_w = Dim(data, 3);
  int64_t out_c = Dim(kernel, 0), kh = Dim(kernel, 2), kw = Dim(kernel, 3);
  int64_t out_h = ConvOutDim(in_h, kh, stride, pad);
  int64_t out_w = ConvOutDim(in_w, kw, stride, pad);
  Tensor padded = PadNCHW(data, pad, name + ".pad");
  IterVar rc = reduce_axis(Range(make_int(0), make_int(in_c)), name + ".rc");
  IterVar ry = reduce_axis(Range(make_int(0), make_int(kh)), name + ".ry");
  IterVar rx = reduce_axis(Range(make_int(0), make_int(kw)), name + ".rx");
  return compute(
      {make_int(batch), make_int(out_c), make_int(out_h), make_int(out_w)},
      [&](const std::vector<Var>& i) {
        Expr h = i[2] * make_int(stride) + ry->var;
        Expr w = i[3] * make_int(stride) + rx->var;
        Expr val = padded({i[0], rc->var, h, w}) * kernel({i[1], rc->var, ry->var, rx->var});
        return sum(val, {rc, ry, rx});
      },
      name);
}

Tensor DepthwiseConv2dNCHW(const Tensor& data, const Tensor& kernel, int stride, int pad,
                           const std::string& name) {
  int64_t batch = Dim(data, 0), in_h = Dim(data, 2), in_w = Dim(data, 3);
  int64_t channels = Dim(data, 1);
  int64_t kh = Dim(kernel, 2), kw = Dim(kernel, 3);
  int64_t out_h = ConvOutDim(in_h, kh, stride, pad);
  int64_t out_w = ConvOutDim(in_w, kw, stride, pad);
  Tensor padded = PadNCHW(data, pad, name + ".pad");
  IterVar ry = reduce_axis(Range(make_int(0), make_int(kh)), name + ".ry");
  IterVar rx = reduce_axis(Range(make_int(0), make_int(kw)), name + ".rx");
  return compute(
      {make_int(batch), make_int(channels), make_int(out_h), make_int(out_w)},
      [&](const std::vector<Var>& i) {
        Expr h = i[2] * make_int(stride) + ry->var;
        Expr w = i[3] * make_int(stride) + rx->var;
        Expr val = padded({i[0], i[1], h, w}) * kernel({i[1], make_int(0), ry->var, rx->var});
        return sum(val, {ry, rx});
      },
      name);
}

Tensor Conv2dTransposeNCHW(const Tensor& data, const Tensor& kernel, int stride, int pad,
                           const std::string& name) {
  int64_t batch = Dim(data, 0), in_c = Dim(data, 1), in_h = Dim(data, 2), in_w = Dim(data, 3);
  int64_t out_c = Dim(kernel, 1), kh = Dim(kernel, 2), kw = Dim(kernel, 3);
  int64_t out_h = (in_h - 1) * stride + kh - 2 * pad;
  int64_t out_w = (in_w - 1) * stride + kw - 2 * pad;
  IterVar rc = reduce_axis(Range(make_int(0), make_int(in_c)), name + ".rc");
  IterVar ry = reduce_axis(Range(make_int(0), make_int(kh)), name + ".ry");
  IterVar rx = reduce_axis(Range(make_int(0), make_int(kw)), name + ".rx");
  return compute(
      {make_int(batch), make_int(out_c), make_int(out_h), make_int(out_w)},
      [&](const std::vector<Var>& i) {
        // Input position contributing through kernel tap (ry, rx).
        Expr hn = i[2] + make_int(pad) - ry->var;
        Expr wn = i[3] + make_int(pad) - rx->var;
        Expr h = hn / make_int(stride);
        Expr w = wn / make_int(stride);
        Expr aligned = logic_and(eq(hn % make_int(stride), make_int(0)),
                                 eq(wn % make_int(stride), make_int(0)));
        Expr in_bounds = logic_and(
            logic_and(ge(h, make_int(0)), lt(h, make_int(in_h))),
            logic_and(ge(w, make_int(0)), lt(w, make_int(in_w))));
        Expr hc = max(min(h, make_int(in_h - 1)), make_int(0));
        Expr wc = max(min(w, make_int(in_w - 1)), make_int(0));
        Expr val = if_then_else(logic_and(aligned, in_bounds),
                                data({i[0], rc->var, hc, wc}), make_const(data.dtype(), 0)) *
                   kernel({rc->var, i[1], ry->var, rx->var});
        return sum(val, {rc, ry, rx});
      },
      name);
}

Tensor Dense(const Tensor& data, const Tensor& weight, const std::string& name) {
  int64_t batch = Dim(data, 0), in_dim = Dim(data, 1), out_dim = Dim(weight, 0);
  IterVar k = reduce_axis(Range(make_int(0), make_int(in_dim)), name + ".k");
  return compute({make_int(batch), make_int(out_dim)},
                 [&](const std::vector<Var>& i) {
                   return sum(data({i[0], k->var}) * weight({i[1], k->var}), {k});
                 },
                 name);
}

namespace {

Tensor Elementwise(const Tensor& x, const std::function<Expr(Expr)>& f,
                   const std::string& name) {
  return compute(x.shape(),
                 [&](const std::vector<Var>& i) {
                   std::vector<Expr> idx(i.begin(), i.end());
                   return f(x(idx));
                 },
                 name);
}

}  // namespace

Tensor Relu(const Tensor& x, const std::string& name) {
  return Elementwise(x, [&](Expr v) { return max(v, make_const(x.dtype(), 0)); }, name);
}

Tensor TanhOp(const Tensor& x, const std::string& name) {
  return Elementwise(x, [](Expr v) { return tanh(v); }, name);
}

Tensor SigmoidOp(const Tensor& x, const std::string& name) {
  return Elementwise(x, [](Expr v) { return sigmoid(v); }, name);
}

Tensor Add(const Tensor& a, const Tensor& b, const std::string& name) {
  return compute(a.shape(),
                 [&](const std::vector<Var>& i) {
                   std::vector<Expr> idx(i.begin(), i.end());
                   return a(idx) + b(idx);
                 },
                 name);
}

Tensor Mul(const Tensor& a, const Tensor& b, const std::string& name) {
  return compute(a.shape(),
                 [&](const std::vector<Var>& i) {
                   std::vector<Expr> idx(i.begin(), i.end());
                   return a(idx) * b(idx);
                 },
                 name);
}

Tensor BatchNorm(const Tensor& x, const Tensor& scale, const Tensor& shift,
                 const std::string& name) {
  return compute(x.shape(),
                 [&](const std::vector<Var>& i) {
                   std::vector<Expr> idx(i.begin(), i.end());
                   return x(idx) * scale({i[1]}) + shift({i[1]});
                 },
                 name);
}

Tensor BiasAdd(const Tensor& x, const Tensor& bias, const std::string& name) {
  return compute(x.shape(),
                 [&](const std::vector<Var>& i) {
                   std::vector<Expr> idx(i.begin(), i.end());
                   return x(idx) + bias({i[1]});
                 },
                 name);
}

Tensor MaxPool2d(const Tensor& x, int kernel, int stride, int pad, const std::string& name) {
  int64_t batch = Dim(x, 0), channels = Dim(x, 1), in_h = Dim(x, 2), in_w = Dim(x, 3);
  int64_t out_h = ConvOutDim(in_h, kernel, stride, pad);
  int64_t out_w = ConvOutDim(in_w, kernel, stride, pad);
  IterVar ry = reduce_axis(Range(make_int(0), make_int(kernel)), name + ".ry");
  IterVar rx = reduce_axis(Range(make_int(0), make_int(kernel)), name + ".rx");
  return compute(
      {make_int(batch), make_int(channels), make_int(out_h), make_int(out_w)},
      [&](const std::vector<Var>& i) {
        Expr h = i[2] * make_int(stride) + ry->var - make_int(pad);
        Expr w = i[3] * make_int(stride) + rx->var - make_int(pad);
        Expr in_bounds = logic_and(logic_and(ge(h, make_int(0)), lt(h, make_int(in_h))),
                                   logic_and(ge(w, make_int(0)), lt(w, make_int(in_w))));
        Expr hc = max(min(h, make_int(in_h - 1)), make_int(0));
        Expr wc = max(min(w, make_int(in_w - 1)), make_int(0));
        Expr val = if_then_else(in_bounds, x({i[0], i[1], hc, wc}),
                                make_const(x.dtype(), -1e30));
        return max_reduce(val, {ry, rx});
      },
      name);
}

Tensor GlobalAvgPool(const Tensor& x, const std::string& name) {
  int64_t in_h = Dim(x, 2), in_w = Dim(x, 3);
  IterVar ry = reduce_axis(Range(make_int(0), make_int(in_h)), name + ".ry");
  IterVar rx = reduce_axis(Range(make_int(0), make_int(in_w)), name + ".rx");
  Tensor total = compute(
      {x.shape()[0], x.shape()[1]},
      [&](const std::vector<Var>& i) {
        return sum(x({i[0], i[1], ry->var, rx->var}), {ry, rx});
      },
      name + ".sum");
  double denom = static_cast<double>(in_h * in_w);
  return compute({x.shape()[0], x.shape()[1]},
                 [&](const std::vector<Var>& i) {
                   return total({i[0], i[1]}) * make_const(x.dtype(), 1.0 / denom);
                 },
                 name);
}

Tensor Flatten(const Tensor& x, const std::string& name) {
  int64_t n = 1;
  for (size_t d = 1; d < x.shape().size(); ++d) {
    n *= Dim(x, static_cast<int>(d));
  }
  std::vector<int64_t> dims;
  for (size_t d = 1; d < x.shape().size(); ++d) {
    dims.push_back(Dim(x, static_cast<int>(d)));
  }
  return compute({x.shape()[0], make_int(n)},
                 [&](const std::vector<Var>& i) {
                   std::vector<Expr> idx{i[0]};
                   Expr rem = i[1];
                   int64_t inner = n;
                   for (size_t d = 0; d < dims.size(); ++d) {
                     inner /= dims[d];
                     idx.push_back((rem / make_int(inner)) % make_int(dims[d]));
                   }
                   return x(idx);
                 },
                 name);
}

Tensor Softmax(const Tensor& x, const std::string& name) {
  int64_t classes = Dim(x, 1);
  IterVar k1 = reduce_axis(Range(make_int(0), make_int(classes)), name + ".k1");
  IterVar k2 = reduce_axis(Range(make_int(0), make_int(classes)), name + ".k2");
  Tensor max_el = compute({x.shape()[0]},
                          [&](const std::vector<Var>& i) {
                            return max_reduce(x({i[0], k1->var}), {k1});
                          },
                          name + ".max");
  Tensor expsum = compute({x.shape()[0]},
                          [&](const std::vector<Var>& i) {
                            return sum(exp(x({i[0], k2->var}) - max_el({i[0]})), {k2});
                          },
                          name + ".expsum");
  return compute({x.shape()[0], x.shape()[1]},
                 [&](const std::vector<Var>& i) {
                   return exp(x({i[0], i[1]}) - max_el({i[0]})) / expsum({i[0]});
                 },
                 name);
}

}  // namespace topi
}  // namespace tvmcpp
