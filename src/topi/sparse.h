// Sparse operators: CSR SpMM (sparse_dense) as a first-class topi workload.
//
// Two forms of the same matmul-with-pruned-weights computation:
//   - SparseDense: a declarative te compute with a fixed (ELL-bounded) reduction
//     axis, so the whole dense machinery — fusion, schedule templates, the
//     vectorizer's gather/scatter lowering, rebatching, autotuning — applies
//     unchanged. Out-of-row reduction steps are guarded to contribute exact
//     zeros, which keeps the result bitwise-equal to the dense reference (see
//     src/runtime/csr.h on why the padded tail makes the guard side-effect-free).
//   - SpMMCSRRowBlocks: a hand-built TIR kernel over the true CSR form, with
//     data-dependent per-row loop bounds and a kParallel outer loop over
//     nnz-balanced row blocks (CSRMatrix::NnzBalancedRowBlocks), so parallel
//     chunks do equal work even under skewed row densities.
#ifndef SRC_TOPI_SPARSE_H_
#define SRC_TOPI_SPARSE_H_

#include <cstdint>
#include <string>

#include "src/lower/lower.h"
#include "src/te/tensor.h"

namespace tvmcpp {
namespace topi {

// SpMM against a CSR weight matrix: x [M, K] x csr(W [N, K]) -> [M, N], i.e.
// out[m, n] = sum over W's row n of data[p] * x[m, indices[p]].
//
// w_data/w_indices are the padded CSR arrays ([CsrAllocLen] elements), w_indptr
// is int32 [N + 1]. `max_row_nnz` (the densest row) bounds the reduction axis;
// rows shorter than it contribute guarded zero terms for the remainder, which
// by the padded allocation never read out of bounds.
Tensor SparseDense(const Tensor& x, const Tensor& w_data, const Tensor& w_indices,
                   const Tensor& w_indptr, int64_t max_row_nnz,
                   const std::string& name = "sparse_dense");

// The true-CSR SpMM kernel, built directly as TIR (no te/schedule pass): the
// outer loop runs kParallel over `nblocks` row blocks whose boundaries arrive at
// runtime in a `block_starts` buffer (int32 [nblocks + 1], from
// CSRMatrix::NnzBalancedRowBlocks), and every inner loop bound is loaded from
// indptr — the data-dependent-extent pattern the ELL form avoids. Buffer args,
// in order: x [M*K], w_data, w_indices (padded CSR arrays), w_indptr [N+1],
// block_starts [nblocks+1], out [M*N].
LoweredFunc SpMMCSRRowBlocks(int64_t batch, int64_t in_dim, int64_t out_dim,
                             int64_t alloc_len, int64_t nblocks, DataType dtype,
                             const std::string& name = "spmm_csr_blocks");

}  // namespace topi
}  // namespace tvmcpp

#endif  // SRC_TOPI_SPARSE_H_
