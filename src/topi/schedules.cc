#include "src/topi/schedules.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/ir/simplify.h"
#include "src/runtime/csr.h"
#include "src/topi/sparse.h"

namespace tvmcpp {
namespace topi {

namespace {

// Divisor-based knob choices within [lo, hi].
std::vector<int64_t> DivisorChoices(int64_t extent, int64_t lo, int64_t hi) {
  std::vector<int64_t> out;
  for (int64_t d = 1; d <= extent; ++d) {
    if (extent % d == 0 && d >= lo && d <= hi) {
      out.push_back(d);
    }
  }
  if (out.empty()) {
    out.push_back(std::min(extent, hi));
  }
  return out;
}

int64_t At(const Config& c, const std::string& key, int64_t fallback) {
  auto it = c.find(key);
  return it == c.end() ? fallback : it->second;
}

// Finds the pad stage feeding a conv op (if any).
Tensor FindPadInput(const Tensor& conv) {
  for (const Tensor& t : conv.op()->InputTensors()) {
    if (t.name().find(".pad") != std::string::npos) {
      return t;
    }
  }
  return Tensor();
}

}  // namespace

std::string OpWorkload::Key() const {
  std::ostringstream os;
  os << kind << "_n" << n << "_h" << h << "_w" << w << "_ic" << ic << "_oc" << oc << "_k"
     << k << "_s" << stride << "_p" << pad << "_" << dtype.ToString();
  if (kind == "sparse_dense") {
    // The sparsity pattern changes the kernel (ELL bound, buffer sizes), so it is
    // part of the tuning-cache identity for sparse workloads only.
    os << "_nnz" << nnz << "_rn" << max_row_nnz;
  }
  return os.str();
}

double OpWorkload::Flops() const {
  if (kind == "sparse_dense") {
    return 2.0 * n * static_cast<double>(nnz);
  }
  if (kind == "dense") {
    return 2.0 * n * oc * k;
  }
  double oh = static_cast<double>(ConvOutDim(h, k, stride, pad));
  double ow = static_cast<double>(ConvOutDim(w, k, stride, pad));
  if (kind == "depthwise_conv2d") {
    return 2.0 * n * ic * oh * ow * k * k;
  }
  if (kind == "conv2d_transpose") {
    return 2.0 * n * ic * oc * h * w * k * k;
  }
  return 2.0 * n * oc * ic * oh * ow * k * k;
}

BuiltOp BuildOpCompute(const OpWorkload& wl) {
  BuiltOp b;
  if (wl.kind == "sparse_dense") {
    int64_t alloc = runtime::CsrAllocLen(wl.nnz, wl.max_row_nnz);
    Tensor data = placeholder({make_int(wl.n), make_int(wl.k)}, wl.dtype, "data");
    Tensor w_data = placeholder({make_int(alloc)}, wl.dtype, "w_data");
    Tensor w_indices = placeholder({make_int(alloc)}, DataType::Int32(), "w_indices");
    Tensor w_indptr = placeholder({make_int(wl.oc + 1)}, DataType::Int32(), "w_indptr");
    b.inputs = {data, w_data, w_indices, w_indptr};
    b.output = SparseDense(data, w_data, w_indices, w_indptr, wl.max_row_nnz);
    return b;
  }
  if (wl.kind == "dense") {
    Tensor data = placeholder({make_int(wl.n), make_int(wl.k)}, wl.dtype, "data");
    Tensor weight = placeholder({make_int(wl.oc), make_int(wl.k)}, wl.dtype, "weight");
    b.inputs = {data, weight};
    b.output = Dense(data, weight);
    return b;
  }
  Tensor data = placeholder({make_int(wl.n), make_int(wl.ic), make_int(wl.h), make_int(wl.w)},
                            wl.dtype, "data");
  if (wl.kind == "conv2d") {
    Tensor kernel = placeholder(
        {make_int(wl.oc), make_int(wl.ic), make_int(wl.k), make_int(wl.k)}, wl.dtype,
        "kernel");
    b.inputs = {data, kernel};
    b.output = Conv2dNCHW(data, kernel, wl.stride, wl.pad);
  } else if (wl.kind == "depthwise_conv2d") {
    Tensor kernel = placeholder({make_int(wl.ic), make_int(1), make_int(wl.k), make_int(wl.k)},
                                wl.dtype, "kernel");
    b.inputs = {data, kernel};
    b.output = DepthwiseConv2dNCHW(data, kernel, wl.stride, wl.pad);
  } else if (wl.kind == "conv2d_transpose") {
    Tensor kernel = placeholder(
        {make_int(wl.ic), make_int(wl.oc), make_int(wl.k), make_int(wl.k)}, wl.dtype,
        "kernel");
    b.inputs = {data, kernel};
    b.output = Conv2dTransposeNCHW(data, kernel, wl.stride, wl.pad);
  } else {
    LOG(FATAL) << "unknown workload kind " << wl.kind;
  }
  return b;
}

ConfigSpace GetScheduleSpace(const OpWorkload& wl, const Target& target) {
  ConfigSpace space;
  if (wl.kind == "sparse_dense") {
    if (target.kind == TargetKind::kGpu) {
      space.knobs = {
          {"tile_y", DivisorChoices(wl.n, 1, 16)},
          {"tile_x", DivisorChoices(wl.oc, 1, 64)},
      };
    } else {
      // parallel: 0 = serial, 1 = batch rows, 2 = output-column blocks (the right
      // axis for single-sample serving, where the batch extent is 1; per-column
      // cost is uniform under the ELL bound, so column blocks are nnz-balanced).
      space.knobs = {
          {"tile_y", DivisorChoices(wl.n, 1, 16)},
          {"tile_x", DivisorChoices(wl.oc, 4, 64)},
          {"vectorize", {0, 1}},
          {"parallel", {0, 1, 2}},
      };
    }
    return space;
  }
  if (wl.kind == "dense") {
    if (target.kind == TargetKind::kGpu) {
      // Matrix-vector shapes (small batch) need wide x-tiles to fill a block with
      // threads; square matmul keeps 2-D tiles.
      int64_t max_tx = wl.n <= 4 ? 256 : 32;
      space.knobs = {
          {"tile_y", DivisorChoices(wl.n, 4, 32)},
          {"tile_x", DivisorChoices(wl.oc, 4, max_tx)},
          {"tile_k", DivisorChoices(wl.k, 4, 64)},
          {"use_shared", {0, 1}},
          {"vthread", {1, 2}},
      };
    } else if (target.kind == TargetKind::kAccel) {
      space.knobs = {{"vthread", {1, 2, 4}}};
    } else {
      space.knobs = {
          {"tile_y", DivisorChoices(wl.n, 1, 16)},
          {"tile_x", DivisorChoices(wl.oc, 4, 64)},
          {"vectorize", {0, 1}},
          {"parallel", {0, 1}},
      };
    }
    return space;
  }
  int64_t out_w = wl.kind == "conv2d_transpose"
                      ? (wl.w - 1) * wl.stride + wl.k - 2 * wl.pad
                      : ConvOutDim(wl.w, wl.k, wl.stride, wl.pad);
  int64_t channels = wl.kind == "depthwise_conv2d" ? wl.ic : wl.oc;
  int64_t out_h = wl.kind == "conv2d_transpose"
                      ? (wl.h - 1) * wl.stride + wl.k - 2 * wl.pad
                      : ConvOutDim(wl.h, wl.k, wl.stride, wl.pad);
  if (target.kind == TargetKind::kGpu) {
    space.knobs = {
        {"tile_oc", DivisorChoices(channels, 2, 64)},
        {"tile_ow", DivisorChoices(out_w, 2, 32)},
        {"tile_oh", DivisorChoices(out_h, 1, 8)},
        {"tile_rc", DivisorChoices(wl.kind == "depthwise_conv2d" ? 1 : wl.ic, 1, 32)},
        {"use_shared", {0, 1}},
        {"unroll", {0, 1}},
        {"vthread", {1, 2}},
    };
  } else {
    space.knobs = {
        {"tile_oc", DivisorChoices(channels, 1, 32)},
        {"tile_ow", DivisorChoices(out_w, 1, 32)},
        {"vectorize", {0, 1}},
        {"parallel", {0, 1}},
        {"unroll", {0, 1}},
    };
  }
  return space;
}

Config DefaultConfig(const ConfigSpace& space) {
  Config c;
  for (const KnobSpec& k : space.knobs) {
    c[k.name] = k.choices[k.choices.size() / 2];
  }
  return c;
}

namespace {

// ---------------------------------------------------------------------------
// GPU templates
// ---------------------------------------------------------------------------

// Conv2d / depthwise GPU master template. `out` is the stage whose axes are tiled (the
// fused group output); `master` the reduction op (== out when unfused).
void ScheduleConvGpu(const Schedule& s, const Tensor& out, const Tensor& master,
                     const Config& cfg, bool depthwise) {
  int64_t toc = At(cfg, "tile_oc", 8);
  int64_t tow = At(cfg, "tile_ow", 8);
  int64_t toh = At(cfg, "tile_oh", 1);
  int64_t trc = At(cfg, "tile_rc", 8);
  bool use_shared = At(cfg, "use_shared", 1) != 0;
  bool unroll = At(cfg, "unroll", 0) != 0;
  int64_t vthread = At(cfg, "vthread", 1);
  if (vthread > 1 && tow % vthread != 0) {
    vthread = 1;
  }

  Tensor pad = FindPadInput(master);
  if (pad.defined()) {
    (*s)[pad]->compute_inline();
  }
  // Capture the reduction inputs before cache_write rewires the master op.
  std::vector<Tensor> master_inputs = master.op()->InputTensors();

  // Reduction results accumulate in per-thread registers.
  Tensor local;
  if (out == master) {
    local = s->cache_write(out, "local");
  } else {
    local = master;
    (*s)[master]->set_scope("local");
  }

  Stage so = (*s)[out];
  CHECK_GE(so->leaf_iter_vars.size(), 4u)
      << "conv template requires a 4-D NCHW output stage";
  IterVar oc = so->leaf_iter_vars[1];
  IterVar oh = so->leaf_iter_vars[2];
  IterVar ow = so->leaf_iter_vars[3];
  IterVar oco, oci, owo, owi, oho, ohi;
  so->split(oc, toc, &oco, &oci);
  so->split(ow, tow, &owo, &owi);
  so->split(oh, toh, &oho, &ohi);
  // Per-thread virtual-thread striding over the ow tile (when requested).
  IterVar vw, owi2;
  if (vthread > 1) {
    so->split(owi, tow / vthread, &vw, &owi2);
  } else {
    owi2 = owi;
  }
  if (vthread > 1) {
    so->reorder({oco, oho, owo, vw, oci, owi2, ohi});
  } else {
    so->reorder({oco, oho, owo, oci, owi2, ohi});
  }
  IterVar bx = so->fuse(oho, owo);
  so->bind(oco, thread_axis("blockIdx.y"));
  so->bind(bx, thread_axis("blockIdx.x"));
  if (vthread > 1) {
    so->bind(vw, thread_axis("vthread"));
  }
  so->bind(oci, thread_axis("threadIdx.y"));
  so->bind(owi2, thread_axis("threadIdx.x"));

  Stage sl = (*s)[local];
  sl->compute_at(so, owi2);
  // Split the channel reduction; ry/rx stay innermost.
  IterVar attach_point;
  if (!depthwise) {
    // leaf order: n, oc, oh, ow, rc, ry, rx
    IterVar rc = sl->leaf_iter_vars[4];
    IterVar rco, rci;
    sl->split(rc, trc, &rco, &rci);
    attach_point = rco;
    if (unroll) {
      sl->unroll(sl->leaf_iter_vars[6]);  // ry
      sl->unroll(sl->leaf_iter_vars[7]);  // rx
    }
  } else {
    attach_point = sl->leaf_iter_vars[4];  // ry
    if (unroll) {
      sl->unroll(sl->leaf_iter_vars[5]);  // rx
    }
  }

  if (use_shared) {
    Tensor inputs0 = master_inputs[0];
    Tensor kernel = master_inputs[1];
    Tensor as = s->cache_read(inputs0, "shared", {master == out ? local.op() : master.op()});
    Tensor ws = s->cache_read(kernel, "shared", {master == out ? local.op() : master.op()});
    int64_t tx_extent = tow / vthread;  // actual threadIdx.x extent after vthreading
    for (const Tensor& c : {as, ws}) {
      Stage sc = (*s)[c];
      sc->compute_at(sl, attach_point);
      // Cooperative copy: fuse all axes, bind to the thread grid.
      IterVar f = sc->leaf_iter_vars[0];
      for (size_t i = 1; i < sc->leaf_iter_vars.size(); ++i) {
        f = sc->fuse(f, sc->leaf_iter_vars[1]);
      }
      IterVar fo, fi, foo, fty;
      sc->split(f, tx_extent, &fo, &fi);
      sc->bind(fi, thread_axis("threadIdx.x"));
      sc->split(fo, toc, &foo, &fty);
      sc->bind(fty, thread_axis("threadIdx.y"));
    }
  }
}

// Dense GPU template with optional cooperative shared-memory staging (Figure 7).
void ScheduleDenseGpu(const Schedule& s, const Tensor& out, const Tensor& master,
                      const Config& cfg) {
  int64_t ty = At(cfg, "tile_y", 16);
  int64_t tx = At(cfg, "tile_x", 16);
  int64_t tk = At(cfg, "tile_k", 16);
  bool use_shared = At(cfg, "use_shared", 1) != 0;
  int64_t vthread = At(cfg, "vthread", 1);
  if (vthread > 1 && ty % vthread != 0) {
    vthread = 1;  // infeasible striding for this tile; fall back
  }

  std::vector<Tensor> master_inputs = master.op()->InputTensors();
  Tensor local;
  if (out == master) {
    local = s->cache_write(out, "local");
  } else {
    local = master;
    (*s)[master]->set_scope("local");
  }
  Stage so = (*s)[out];
  IterVar y = so->leaf_iter_vars[0], x = so->leaf_iter_vars[1];
  IterVar by, yin, bx, xin;
  so->split(y, ty, &by, &yin);
  so->split(x, tx, &bx, &xin);
  so->reorder({by, bx, yin, xin});
  so->bind(by, thread_axis("blockIdx.y"));
  so->bind(bx, thread_axis("blockIdx.x"));
  IterVar tyv = thread_axis("threadIdx.y");
  IterVar txv = thread_axis("threadIdx.x");
  if (vthread > 1) {
    IterVar vy, tyi;
    so->split(yin, ty / vthread, &vy, &tyi);
    so->bind(vy, thread_axis("vthread"));
    so->bind(tyi, tyv);
    so->bind(xin, txv);
  } else {
    so->bind(yin, tyv);
    so->bind(xin, txv);
  }
  Stage sl = (*s)[local];
  sl->compute_at(so, so->leaf_iter_vars.back());
  IterVar rk = sl->leaf_iter_vars[2];
  IterVar rko, rki;
  sl->split(rk, tk, &rko, &rki);
  if (use_shared) {
    Tensor a = master_inputs[0];
    Tensor b = master_inputs[1];
    Operation reader = (master == out ? local : master).op();
    for (const Tensor& src : {a, b}) {
      Tensor cacheT = s->cache_read(src, "shared", {reader});
      Stage sc = (*s)[cacheT];
      sc->compute_at(sl, rko);
      IterVar f = sc->fuse(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1]);
      IterVar fo, fi, foo, fty;
      sc->split(f, tx, &fo, &fi);
      sc->bind(fi, txv);
      sc->split(fo, ty / std::max<int64_t>(vthread, 1), &foo, &fty);
      sc->bind(fty, tyv);
    }
  }
}

// ---------------------------------------------------------------------------
// CPU templates
// ---------------------------------------------------------------------------

void ScheduleConvCpu(const Schedule& s, const Tensor& out, const Tensor& master,
                     const Config& cfg, bool depthwise) {
  int64_t toc = At(cfg, "tile_oc", 4);
  int64_t tow = At(cfg, "tile_ow", 8);
  bool vec = At(cfg, "vectorize", 1) != 0;
  bool par = At(cfg, "parallel", 1) != 0;
  bool unroll = At(cfg, "unroll", 0) != 0;

  Tensor pad = FindPadInput(master);
  if (pad.defined()) {
    (*s)[pad]->compute_inline();
  }
  Stage so = (*s)[out];
  CHECK_GE(so->leaf_iter_vars.size(), 4u)
      << "conv template requires a 4-D NCHW output stage";
  IterVar oc = so->leaf_iter_vars[1];
  IterVar ow = so->leaf_iter_vars[3];
  IterVar oco, oci, owo, owi;
  so->split(oc, toc, &oco, &oci);
  so->split(ow, tow, &owo, &owi);
  // n, oco, oh, owo, oci, owi (+ reduce axes on the master).
  so->reorder({so->leaf_iter_vars[0], oco, so->leaf_iter_vars[3], owo, oci, owi});
  if (par) {
    so->parallel(oco);
  }
  if (vec) {
    so->vectorize(owi);
  }
  if (out != master) {
    Stage sm = (*s)[master];
    sm->compute_at(so, owo);
    if (unroll && !depthwise) {
      sm->unroll(sm->leaf_iter_vars.back());
    }
  } else {
    if (unroll) {
      so->unroll(so->leaf_iter_vars.back());  // rx
    }
  }
}

// ELL-bounded CSR SpMM. Mirrors the dense template's tiling, but the parallel
// knob may pick the output-column axis (uniform per-column cost under the ELL
// bound makes column blocks nnz-balanced chunks), and vectorizing xi turns the
// indptr/indices/data reads — and the column-indexed x read through them — into
// the vectorizer's gather form (the VM's vector-indexed kVLoad opcodes).
void ScheduleSparseDenseCpu(const Schedule& s, const Tensor& out, const Tensor& master,
                            const Config& cfg) {
  int64_t ty = At(cfg, "tile_y", 1);
  int64_t tx = At(cfg, "tile_x", 16);
  bool vec = At(cfg, "vectorize", 0) != 0;
  int64_t par = At(cfg, "parallel", 1);
  Stage so = (*s)[out];
  IterVar y = so->leaf_iter_vars[0], x = so->leaf_iter_vars[1];
  IterVar yo, yi, xo, xi;
  so->split(y, ty, &yo, &yi);
  so->split(x, tx, &xo, &xi);
  so->reorder({yo, xo, yi, xi});
  if (par == 1) {
    so->parallel(yo);
  } else if (par == 2) {
    so->parallel(xo);
  }
  if (vec) {
    so->vectorize(xi);
  }
  if (out != master) {
    (*s)[master]->compute_at(so, xo);
  }
}

void ScheduleSparseDenseGpu(const Schedule& s, const Tensor& out, const Tensor& master,
                            const Config& cfg) {
  int64_t ty = At(cfg, "tile_y", 1);
  int64_t tx = At(cfg, "tile_x", 16);
  Stage so = (*s)[out];
  IterVar y = so->leaf_iter_vars[0], x = so->leaf_iter_vars[1];
  IterVar by, yi, bx, xi;
  so->split(y, ty, &by, &yi);
  so->split(x, tx, &bx, &xi);
  so->reorder({by, bx, yi, xi});
  so->bind(by, thread_axis("blockIdx.y"));
  so->bind(bx, thread_axis("blockIdx.x"));
  so->bind(yi, thread_axis("threadIdx.y"));
  so->bind(xi, thread_axis("threadIdx.x"));
  if (out != master) {
    (*s)[master]->compute_at(so, so->leaf_iter_vars.back());
  }
}

void ScheduleDenseCpu(const Schedule& s, const Tensor& out, const Tensor& master,
                      const Config& cfg) {
  int64_t ty = At(cfg, "tile_y", 1);
  int64_t tx = At(cfg, "tile_x", 16);
  bool vec = At(cfg, "vectorize", 1) != 0;
  bool par = At(cfg, "parallel", 1) != 0;
  Stage so = (*s)[out];
  IterVar y = so->leaf_iter_vars[0], x = so->leaf_iter_vars[1];
  IterVar yo, yi, xo, xi;
  so->split(y, ty, &yo, &yi);
  so->split(x, tx, &xo, &xi);
  so->reorder({yo, xo, yi, xi});
  if (par) {
    so->parallel(yo);
  }
  if (vec) {
    so->vectorize(xi);
  }
  if (out != master) {
    (*s)[master]->compute_at(so, xo);
  }
}

}  // namespace

void ScheduleInjective(const Target& target, const Schedule& s, const Tensor& out) {
  Stage so = (*s)[out];
  if (so->leaf_iter_vars.empty()) {
    return;
  }
  if (target.kind == TargetKind::kGpu) {
    IterVar f = so->leaf_iter_vars[0];
    size_t ndim = so->leaf_iter_vars.size();
    // Fuse spatial axes only (reduction axes, if any, stay serial).
    size_t spatial = 0;
    for (const IterVar& iv : so->leaf_iter_vars) {
      if (iv->type == IterVarType::kDataPar) {
        ++spatial;
      }
    }
    (void)ndim;
    for (size_t i = 1; i < spatial; ++i) {
      f = so->fuse(f, so->leaf_iter_vars[1]);
    }
    IterVar bx, tx;
    so->split(f, 256, &bx, &tx);
    so->bind(bx, thread_axis("blockIdx.x"));
    so->bind(tx, thread_axis("threadIdx.x"));
  } else {
    so->parallel(so->leaf_iter_vars[0]);
    IterVar last;
    for (const IterVar& iv : so->leaf_iter_vars) {
      if (iv->type == IterVarType::kDataPar) {
        last = iv;
      }
    }
    if (last != nullptr && last.get() != so->leaf_iter_vars[0].get()) {
      so->vectorize(last);
    }
  }
}

Schedule ApplyOpSchedule(const OpWorkload& wl, const Target& target, const BuiltOp& built,
                         const Config& config) {
  Schedule s = create_schedule({built.output});
  if (target.kind == TargetKind::kGpu) {
    if (wl.kind == "sparse_dense") {
      ScheduleSparseDenseGpu(s, built.output, built.output, config);
    } else if (wl.kind == "dense") {
      ScheduleDenseGpu(s, built.output, built.output, config);
    } else if (wl.kind == "conv2d_transpose") {
      ScheduleInjective(target, s, built.output);
    } else {
      ScheduleConvGpu(s, built.output, built.output, config, wl.kind == "depthwise_conv2d");
    }
  } else {
    if (wl.kind == "sparse_dense") {
      ScheduleSparseDenseCpu(s, built.output, built.output, config);
    } else if (wl.kind == "dense") {
      ScheduleDenseCpu(s, built.output, built.output, config);
    } else if (wl.kind == "conv2d_transpose") {
      Tensor pad = FindPadInput(built.output);
      if (pad.defined()) {
        (*s)[pad]->compute_inline();
      }
      ScheduleInjective(target, s, built.output);
    } else {
      ScheduleConvCpu(s, built.output, built.output, config, wl.kind == "depthwise_conv2d");
    }
  }
  return s;
}

Schedule ScheduleFusedGroup(const Target& target, const std::vector<Tensor>& group_outputs,
                            const Tensor& master, const Config& config,
                            const OpWorkload* master_wl) {
  Schedule s = create_schedule(group_outputs);
  Tensor out = group_outputs[0];
  // Inline every injective stage between inputs and the output (except the master).
  for (const Stage& st : s->stages) {
    if (st->is_output || dynamic_cast<ComputeOpNode*>(st->op.get()) == nullptr) {
      continue;
    }
    auto* cop = static_cast<ComputeOpNode*>(st->op.get());
    if (!cop->reduce_axis.empty()) {
      continue;  // reductions (master) cannot inline
    }
    st->compute_inline();
  }
  if (!master.defined() || master == out) {
    // Pure injective group (or reduction output directly).
    if (master.defined() && master_wl != nullptr) {
      // Un-inline nothing; schedule the master via its template.
      if (target.kind == TargetKind::kGpu) {
        if (master_wl->kind == "sparse_dense") {
          ScheduleSparseDenseGpu(s, out, master, config);
        } else if (master_wl->kind == "dense") {
          ScheduleDenseGpu(s, out, master, config);
        } else if (master_wl->kind != "conv2d_transpose") {
          ScheduleConvGpu(s, out, master, config,
                          master_wl->kind == "depthwise_conv2d");
        } else {
          ScheduleInjective(target, s, out);
        }
      } else {
        if (master_wl->kind == "sparse_dense") {
          ScheduleSparseDenseCpu(s, out, master, config);
        } else if (master_wl->kind == "dense") {
          ScheduleDenseCpu(s, out, master, config);
        } else if (master_wl->kind != "conv2d_transpose") {
          ScheduleConvCpu(s, out, master, config,
                          master_wl->kind == "depthwise_conv2d");
        } else {
          ScheduleInjective(target, s, out);
        }
      }
    } else {
      ScheduleInjective(target, s, out);
    }
    return s;
  }
  // Master + injective epilogue: schedule the output, attach the master inside.
  if (target.kind == TargetKind::kGpu) {
    if (master_wl != nullptr && master_wl->kind == "sparse_dense") {
      ScheduleSparseDenseGpu(s, out, master, config);
    } else if (master_wl != nullptr && master_wl->kind == "dense") {
      ScheduleDenseGpu(s, out, master, config);
    } else if (master_wl != nullptr && master_wl->kind != "conv2d_transpose") {
      ScheduleConvGpu(s, out, master, config, master_wl->kind == "depthwise_conv2d");
    } else {
      ScheduleInjective(target, s, out);
      (*s)[master]->compute_at((*s)[out], (*s)[out]->leaf_iter_vars.back());
    }
  } else {
    if (master_wl != nullptr && master_wl->kind == "sparse_dense") {
      ScheduleSparseDenseCpu(s, out, master, config);
    } else if (master_wl != nullptr && master_wl->kind == "dense") {
      ScheduleDenseCpu(s, out, master, config);
    } else if (master_wl != nullptr && master_wl->kind != "conv2d_transpose") {
      ScheduleConvCpu(s, out, master, config, master_wl->kind == "depthwise_conv2d");
    } else {
      ScheduleInjective(target, s, out);
      (*s)[master]->compute_at((*s)[out], (*s)[out]->leaf_iter_vars.back());
    }
  }
  return s;
}

}  // namespace topi
}  // namespace tvmcpp
