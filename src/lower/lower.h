// Schedule lowering: turns a Schedule into a low-level loop program (Figure 6's
// "code lowering" step).
//
// The pipeline:
//   1. inline expansion of compute_inline stages
//   2. bound inference: loop extents from root domains + split/fuse relations; regions of
//      compute_at-attached stages via interval analysis of consumer reads
//   3. loop-nest construction with storage flattening (TensorRead -> flat Load),
//      reduction init/update splitting, thread-binding reuse, memory-scope allocation,
//      barrier injection for shared scopes, and tensorization (Section 4.3)
//   4. simplification
//
// Post passes (target dependent): UnrollLoops, InjectVirtualThreads (Section 4.4).
#ifndef SRC_LOWER_LOWER_H_
#define SRC_LOWER_LOWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/stmt.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {

// An external buffer argument of a lowered function.
struct BufferArg {
  Var var;                     // handle variable appearing in Load/Store
  DataType dtype;
  std::vector<int64_t> shape;  // concrete shape (shape-specialized, Section 5)
  std::string name;
};

// A lowered function: loop program plus its external buffer signature.
struct LoweredFunc {
  std::string name;
  std::vector<BufferArg> args;
  Stmt body;
};

// Lowers `sch` into a function over `args` (placeholders and outputs, in call order).
// The schedule is consumed: operation bodies may be rewritten in place.
LoweredFunc Lower(const Schedule& sch, const std::vector<Tensor>& args,
                  const std::string& name);

// Expands kUnrolled loops with constant extent <= max_extent into straight-line code.
// (Implemented in src/lower/unroll.cc with the rest of the unrolling machinery.)
Stmt UnrollLoops(const Stmt& s, int64_t max_extent = 16);

// --- Loop specialization (src/lower/unroll.cc) -------------------------------------
// Engine-side compile-time specialization applied by the VM compiler before bytecode
// generation (see CompileToProgram): full unrolling of small fixed-extent innermost
// loops with constant folding, and loop-invariant code motion of integer index
// arithmetic into LetStmt bindings. The specialized body is bitwise-equivalent to the
// original; the flags only trade compile time for execution speed.
struct LoopSpecializeOptions {
  // Fully unroll innermost serial/unrolled loops with constant extent <= this
  // (TVMCPP_UNROLL_LIMIT; 0 disables unrolling).
  int64_t unroll_limit = 8;
  // Hoist loop-invariant integer subexpressions out of innermost loops.
  bool hoist_invariants = true;
  // Bytecode-level knobs consumed by the VM compiler (src/vm/vm.cc): strength
  // reduction of affine loop-variable multiplies into per-iteration increments, and
  // the peephole pass collapsing constant-operand arithmetic and dead register moves.
  bool strength_reduce = true;
  bool peephole = true;
  // Reads TVMCPP_VM_SPECIALIZE (0 disables everything) and TVMCPP_UNROLL_LIMIT on
  // every call, so tests can flip the knobs per case.
  static LoopSpecializeOptions FromEnv();
  static LoopSpecializeOptions Disabled();
};

// How often each IR-level specialization fired (exposed per-program through
// vm::GetProgramStats so tests can assert the passes actually ran).
struct LoopSpecializeStats {
  int unrolled_loops = 0;
  int hoisted_lets = 0;  // invariant bindings moved out of innermost loops
  int csed_muls = 0;     // recurring loop-var multiplies bound once per iteration
};

// Runs the IR-level specialization pipeline: unroll-and-fold, then invariant
// hoisting (in that order — a collapsed small nest exposes its parent as innermost).
Stmt SpecializeLoops(const Stmt& s, const LoopSpecializeOptions& opts,
                     LoopSpecializeStats* stats = nullptr);

// Moves "shared"-scope allocations above the thread-binding loops (shared buffers are
// per-block, not per-thread). Required for correct serial interpretation and mirrors
// real GPU codegen, which declares shared memory at kernel scope.
Stmt HoistSharedAllocations(const Stmt& s);

// True when `s` contains a loop bound to a threadIdx hardware thread (such programs need
// SerializeThreadBlocks before host execution). Shared by both execution engines.
bool HasThreadIdxBinding(const Stmt& s);

// Rewrites threadIdx-bound loop nests into block-synchronous serial form: per-thread
// buffers are privatized (expanded by the thread-grid size) and the thread loops are
// re-introduced around each barrier-delimited phase (loop fission at tvm_storage_sync).
// This gives a serial program with exactly the barrier semantics a GPU provides, so the
// interpreter can execute cooperative schedules correctly.
Stmt SerializeThreadBlocks(const Stmt& s);

// Lowers kVThread loops: duplicates per-vthread buffers and interleaves the copies into a
// single statement stream (Figure 8). Must run after Lower().
Stmt InjectVirtualThreads(const Stmt& s);

// Materializes ForType::kVectorized loops as vector IR: Ramp indices, Broadcast
// scalars, lane-typed Load/Store, predicated lanes for lane-dependent guards, and a
// scalar tail when wide loops are strip-mined. Loops the pass cannot prove
// vectorizable are left untouched (engines keep running them serially). Applied by
// the execution engines (src/vm compile, vector-aware interpretation); the machine
// models (src/sim) analyze the pre-vectorization loop nest.
Stmt VectorizeLoop(const Stmt& s);

}  // namespace tvmcpp

#endif  // SRC_LOWER_LOWER_H_
