// Schedule lowering: turns a Schedule into a low-level loop program (Figure 6's
// "code lowering" step).
//
// The pipeline:
//   1. inline expansion of compute_inline stages
//   2. bound inference: loop extents from root domains + split/fuse relations; regions of
//      compute_at-attached stages via interval analysis of consumer reads
//   3. loop-nest construction with storage flattening (TensorRead -> flat Load),
//      reduction init/update splitting, thread-binding reuse, memory-scope allocation,
//      barrier injection for shared scopes, and tensorization (Section 4.3)
//   4. simplification
//
// Post passes (target dependent): UnrollLoops, InjectVirtualThreads (Section 4.4).
#ifndef SRC_LOWER_LOWER_H_
#define SRC_LOWER_LOWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/stmt.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"

namespace tvmcpp {

// An external buffer argument of a lowered function.
struct BufferArg {
  Var var;                     // handle variable appearing in Load/Store
  DataType dtype;
  std::vector<int64_t> shape;  // concrete shape (shape-specialized, Section 5)
  std::string name;
};

// A lowered function: loop program plus its external buffer signature.
struct LoweredFunc {
  std::string name;
  std::vector<BufferArg> args;
  Stmt body;
};

// Lowers `sch` into a function over `args` (placeholders and outputs, in call order).
// The schedule is consumed: operation bodies may be rewritten in place.
LoweredFunc Lower(const Schedule& sch, const std::vector<Tensor>& args,
                  const std::string& name);

// Expands kUnrolled loops with constant extent <= max_extent into straight-line code.
Stmt UnrollLoops(const Stmt& s, int64_t max_extent = 16);

// Moves "shared"-scope allocations above the thread-binding loops (shared buffers are
// per-block, not per-thread). Required for correct serial interpretation and mirrors
// real GPU codegen, which declares shared memory at kernel scope.
Stmt HoistSharedAllocations(const Stmt& s);

// True when `s` contains a loop bound to a threadIdx hardware thread (such programs need
// SerializeThreadBlocks before host execution). Shared by both execution engines.
bool HasThreadIdxBinding(const Stmt& s);

// Rewrites threadIdx-bound loop nests into block-synchronous serial form: per-thread
// buffers are privatized (expanded by the thread-grid size) and the thread loops are
// re-introduced around each barrier-delimited phase (loop fission at tvm_storage_sync).
// This gives a serial program with exactly the barrier semantics a GPU provides, so the
// interpreter can execute cooperative schedules correctly.
Stmt SerializeThreadBlocks(const Stmt& s);

// Lowers kVThread loops: duplicates per-vthread buffers and interleaves the copies into a
// single statement stream (Figure 8). Must run after Lower().
Stmt InjectVirtualThreads(const Stmt& s);

// Materializes ForType::kVectorized loops as vector IR: Ramp indices, Broadcast
// scalars, lane-typed Load/Store, predicated lanes for lane-dependent guards, and a
// scalar tail when wide loops are strip-mined. Loops the pass cannot prove
// vectorizable are left untouched (engines keep running them serially). Applied by
// the execution engines (src/vm compile, vector-aware interpretation); the machine
// models (src/sim) analyze the pre-vectorization loop nest.
Stmt VectorizeLoop(const Stmt& s);

}  // namespace tvmcpp

#endif  // SRC_LOWER_LOWER_H_
