// Loop specialization: compile-time unrolling and loop-invariant code motion.
//
// The execution engines pay per-iteration dispatch, back-edge, and index-arithmetic
// cost on exactly the loops the schedules worked hardest to shape. This file removes
// that cost ahead of bytecode compilation:
//
//   * UnrollLoops       — expands schedule-requested ForType::kUnrolled loops
//                         (moved here from passes.cc).
//   * SpecializeLoops   — the engine-side pipeline (applied by the VM compiler):
//       1. fully unrolls *innermost* serial/unrolled loops whose constant extent is
//          <= LoopSpecializeOptions::unroll_limit (TVMCPP_UNROLL_LIMIT), constant-
//          folding the resulting constant indices through Simplify;
//       2. hoists subexpressions invariant in the innermost loop — pure integer
//          index arithmetic such as the row offsets of a dense kernel or the
//          batch-offset adds introduced by RebatchGraph — into LetStmt bindings
//          computed once per outer iteration.
//
// Bitwise identity with the unspecialized body holds by construction: unrolling
// substitutes integer constants for the loop variable iteration-by-iteration in the
// original order (integer folding is exact, float folding uses the same double
// arithmetic as the engines), and hoisting only moves side-effect-free integer
// arithmetic (never Loads, Calls, or float ops), so every value and every trap is
// produced exactly as before. tests/test_specialize.cc enforces this differentially
// under TVMCPP_VM_STRICT=1.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"
#include "src/lower/lower.h"

namespace tvmcpp {

namespace {

// Shared expansion body: one simplified copy of `body` per iteration value, in
// original order, the loop variable substituted by its constant.
Stmt ExpandConstLoop(const ForNode* n, int64_t min_v, int64_t extent) {
  std::vector<Stmt> unrolled;
  unrolled.reserve(static_cast<size_t>(extent));
  for (int64_t i = 0; i < extent; ++i) {
    VarMap vmap{{n->loop_var.get(), make_int(min_v + i)}};
    unrolled.push_back(Simplify(Substitute(n->body, vmap)));
  }
  return seq(std::move(unrolled));
}

// Schedule-requested unrolling: expands kUnrolled loops (moved from passes.cc so all
// unrolling machinery lives in one place).
class Unroller : public StmtMutator {
 public:
  explicit Unroller(int64_t max_extent) : max_extent_(max_extent) {}

 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    Stmt base = StmtMutator::MutateFor(op, s);
    const auto* n = static_cast<const ForNode*>(base.get());
    if (n->for_type != ForType::kUnrolled) {
      return base;
    }
    int64_t extent, min_v;
    if (!is_const_int(n->extent, &extent) || !is_const_int(n->min, &min_v) ||
        extent > max_extent_) {
      return base;
    }
    return ExpandConstLoop(n, min_v, extent);
  }

 private:
  int64_t max_extent_;
};

// Number of primitive statements (stores, evaluates) in a subtree: the unroll size
// guard multiplies this by the extent to bound code growth.
int CountLeafStmts(const Stmt& s) {
  int count = 0;
  PostOrderVisitStmt(s, [&](const Stmt& st) {
    count += st->kind == StmtKind::kStore || st->kind == StmtKind::kEvaluate;
  });
  return count;
}

bool ContainsFor(const Stmt& s) {
  bool found = false;
  PostOrderVisitStmt(s, [&](const Stmt& st) { found |= st->kind == StmtKind::kFor; });
  return found;
}

bool ContainsAllocate(const Stmt& s) {
  bool found = false;
  PostOrderVisitStmt(s,
                     [&](const Stmt& st) { found |= st->kind == StmtKind::kAllocate; });
  return found;
}

// Fully unrolls innermost serial/unrolled loops with small constant extents,
// bottom-up so a nest of small loops (conv2d's 3x3 window) collapses entirely.
class InnerLoopUnroller : public StmtMutator {
 public:
  InnerLoopUnroller(int64_t limit, int* count) : limit_(limit), count_(count) {}

 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    Stmt base = StmtMutator::MutateFor(op, s);
    const auto* n = static_cast<const ForNode*>(base.get());
    if (n->for_type != ForType::kSerial && n->for_type != ForType::kUnrolled) {
      return base;
    }
    int64_t extent, min_v;
    if (!is_const_int(n->extent, &extent) || !is_const_int(n->min, &min_v)) {
      return base;
    }
    if (extent <= 0 || extent > limit_) {
      return base;
    }
    // Only innermost loops: an inner loop that survived (too wide to unroll) keeps
    // this one rolled too, bounding total expansion to one small nest's body.
    if (ContainsFor(n->body) || ContainsAllocate(n->body)) {
      return base;
    }
    if (CountLeafStmts(n->body) * extent > kMaxUnrolledStmts) {
      return base;
    }
    ++*count_;
    return ExpandConstLoop(n, min_v, extent);
  }

 private:
  static constexpr int kMaxUnrolledStmts = 256;
  int64_t limit_;
  int* count_;
};

// True when `e` is built only from integer Vars, IntImms, and exact integer
// arithmetic/comparisons — the class of expressions whose value is
// position-independent and can be hoisted without changing any result or trap.
// Comparisons and And/Or qualify because both engines evaluate integer boolean
// operands eagerly (no short-circuit over side effects exists here: the subtree is
// load- and call-free by construction). Hoisting them moves a whole padding guard
// (e.g. conv2d's `0 <= ih && ih < H`) out of the innermost loop.
bool PureIntArith(const Expr& e) {
  switch (e->kind) {
    case ExprKind::kIntImm:
      return true;
    case ExprKind::kVar:
      return !e->dtype.is_handle();
    case ExprKind::kNot:
      return PureIntArith(static_cast<const NotNode*>(e.get())->a);
    case ExprKind::kDiv:
    case ExprKind::kMod: {
      // Division can trap: moving one ahead of a (possibly zero-trip) loop must
      // not introduce a fault the original program never executed, so only
      // nonzero-constant divisors (the only kind lowering emits) qualify.
      if (!(e->dtype.is_int() || e->dtype.is_uint()) || e->dtype.lanes() != 1) {
        return false;
      }
      const auto* b = static_cast<const BinaryNode*>(e.get());
      int64_t divisor;
      return is_const_int(b->b, &divisor) && divisor != 0 && PureIntArith(b->a);
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
    case ExprKind::kMin:
    case ExprKind::kMax:
    case ExprKind::kEQ:
    case ExprKind::kNE:
    case ExprKind::kLT:
    case ExprKind::kLE:
    case ExprKind::kGT:
    case ExprKind::kGE:
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      if (!(e->dtype.is_int() || e->dtype.is_uint()) || e->dtype.lanes() != 1) {
        return false;
      }
      const auto* b = static_cast<const BinaryNode*>(e.get());
      return PureIntArith(b->a) && PureIntArith(b->b);
    }
    default:
      return false;
  }
}

bool UsesAnyVar(const Expr& e, const std::unordered_set<const VarNode*>& vars) {
  bool uses = false;
  PostOrderVisit(e, [&](const Expr& x) {
    uses |= x->kind == ExprKind::kVar &&
            vars.count(static_cast<const VarNode*>(x.get())) > 0;
  });
  return uses;
}

bool UsesSomeVar(const Expr& e) {
  bool uses = false;
  PostOrderVisit(e, [&](const Expr& x) { uses |= x->kind == ExprKind::kVar; });
  return uses;
}

// Structural key for candidate matching. The printed form alone is ambiguous:
// two distinct VarNodes may share a name, and substituting one for the other would
// silently miscompile — so variables are keyed by node identity. Only the node
// kinds PureIntArith admits need compact encodings; anything else (unreachable for
// candidates) falls back to an identity-tagged form.
void AppendExprKey(const Expr& e, std::string* out) {
  char buf[32];
  switch (e->kind) {
    case ExprKind::kIntImm:
      std::snprintf(buf, sizeof(buf), "i%lld",
                    static_cast<long long>(static_cast<const IntImmNode*>(e.get())->value));
      *out += buf;
      return;
    case ExprKind::kVar:
      std::snprintf(buf, sizeof(buf), "v%p", static_cast<const void*>(e.get()));
      *out += buf;
      return;
    case ExprKind::kNot:
      *out += "!(";
      AppendExprKey(static_cast<const NotNode*>(e.get())->a, out);
      *out += ')';
      return;
    default:
      break;
  }
  if (const auto* b = dynamic_cast<const BinaryNode*>(e.get())) {
    std::snprintf(buf, sizeof(buf), "b%d(", static_cast<int>(e->kind));
    *out += buf;
    AppendExprKey(b->a, out);
    *out += ',';
    AppendExprKey(b->b, out);
    *out += ')';
    return;
  }
  std::snprintf(buf, sizeof(buf), "?%p", static_cast<const void*>(e.get()));
  *out += buf;
}

std::string ExprKey(const Expr& e) {
  std::string key;
  key.reserve(64);
  AppendExprKey(e, &key);
  return key;
}

// Collects maximal hoistable subexpressions: walking top-down, a subtree that
// qualifies is recorded whole and not descended into, so nested candidates never
// overlap. Keys are printed forms — structurally identical subtrees share one
// binding.
class CandidateCollector : public ExprMutator {
 public:
  CandidateCollector(const std::unordered_set<const VarNode*>* forbidden,
                     std::vector<std::pair<std::string, Expr>>* out)
      : forbidden_(forbidden), out_(out) {}

  Expr Mutate(const Expr& e) override {
    if (Hoistable(e, *forbidden_)) {
      std::string key = ExprKey(e);
      if (!seen_.count(key)) {
        seen_.insert(key);
        out_->emplace_back(key, e);
      }
      return e;
    }
    return ExprMutator::Mutate(e);
  }

  // A candidate is non-leaf pure integer arithmetic (including comparisons and
  // boolean combinations — a hoisted padding guard collapses to one register read)
  // that mentions at least one variable (pure constants fold on their own) and none
  // of the forbidden ones (the loop variable and anything bound inside the body).
  static bool Hoistable(const Expr& e, const std::unordered_set<const VarNode*>& forbidden) {
    switch (e->kind) {
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv:
      case ExprKind::kMod:
      case ExprKind::kMin:
      case ExprKind::kMax:
      case ExprKind::kEQ:
      case ExprKind::kNE:
      case ExprKind::kLT:
      case ExprKind::kLE:
      case ExprKind::kGT:
      case ExprKind::kGE:
      case ExprKind::kAnd:
      case ExprKind::kOr:
      case ExprKind::kNot:
        break;
      default:
        return false;
    }
    return PureIntArith(e) && UsesSomeVar(e) && !UsesAnyVar(e, forbidden);
  }

 private:
  const std::unordered_set<const VarNode*>* forbidden_;
  std::vector<std::pair<std::string, Expr>>* out_;
  std::unordered_set<std::string> seen_;
};

// Replaces every occurrence of a recorded candidate with its hoisted variable.
class CandidateReplacer : public StmtMutator {
 public:
  CandidateReplacer(const std::unordered_set<const VarNode*>* forbidden,
                    const std::unordered_map<std::string, Var>* bindings)
      : forbidden_(forbidden), bindings_(bindings) {}

  Expr Mutate(const Expr& e) override {
    if (CandidateCollector::Hoistable(e, *forbidden_)) {
      auto it = bindings_->find(ExprKey(e));
      if (it != bindings_->end()) {
        return it->second;
      }
    }
    return StmtMutator::Mutate(e);
  }

 private:
  const std::unordered_set<const VarNode*>* forbidden_;
  const std::unordered_map<std::string, Var>* bindings_;
};

// Applies the candidate collector to every expression rooted in `s` (without
// descending into nested statements — the caller walks those).
void ForEachRootExpr(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  PostOrderVisitStmt(s, [&](const Stmt& st) {
    switch (st->kind) {
      case StmtKind::kLetStmt:
        fn(static_cast<const LetStmtNode*>(st.get())->value);
        break;
      case StmtKind::kAssert:
        fn(static_cast<const AssertStmtNode*>(st.get())->condition);
        break;
      case StmtKind::kStore: {
        const auto* n = static_cast<const StoreNode*>(st.get());
        fn(n->value);
        fn(n->index);
        if (n->predicate != nullptr) {
          fn(n->predicate);
        }
        break;
      }
      case StmtKind::kIfThenElse:
        fn(static_cast<const IfThenElseNode*>(st.get())->condition);
        break;
      case StmtKind::kEvaluate:
        fn(static_cast<const EvaluateNode*>(st.get())->value);
        break;
      default:
        break;  // For/Allocate cannot appear in an innermost-loop body
    }
  });
}

// Vars bound by LetStmt/Let inside `s`: hoisting an expression that reads one would
// move it out of its binding's scope.
std::unordered_set<const VarNode*> VarsBoundInside(const Stmt& s) {
  std::unordered_set<const VarNode*> bound;
  PostOrderVisitStmt(s, [&](const Stmt& st) {
    if (st->kind == StmtKind::kLetStmt) {
      bound.insert(static_cast<const LetStmtNode*>(st.get())->var.get());
    }
  });
  ForEachRootExpr(s, [&](const Expr& root) {
    PostOrderVisit(root, [&](const Expr& e) {
      if (e->kind == ExprKind::kLet) {
        bound.insert(static_cast<const LetNode*>(e.get())->var.get());
      }
    });
  });
  return bound;
}

bool ContainsMul(const Expr& e) {
  bool found = false;
  PostOrderVisit(e, [&](const Expr& x) { found |= x->kind == ExprKind::kMul; });
  return found;
}

// Replaces loop-var-dependent multiplies recorded by the CSE step (keyed by printed
// form) with their bound variables.
class MulReplacer : public StmtMutator {
 public:
  explicit MulReplacer(const std::unordered_map<std::string, Var>* bindings)
      : bindings_(bindings) {}

  Expr Mutate(const Expr& e) override {
    if (e->kind == ExprKind::kMul) {
      auto it = bindings_->find(ExprKey(e));
      if (it != bindings_->end()) {
        return it->second;
      }
    }
    return StmtMutator::Mutate(e);
  }

 private:
  const std::unordered_map<std::string, Var>* bindings_;
};

// Loop-invariant code motion over innermost loops: invariant integer arithmetic
// (index/offset computations and padding guards) moves to LetStmt bindings
// immediately outside the loop, computed once per outer iteration instead of once
// per element. A second step binds *loop-var-dependent* multiplies that recur in
// the body (an unrolled nest recomputes `ic * stride` in every copy) to one LetStmt
// at the top of the body — computed once per iteration, and with a single write
// site the VM compiler's strength reduction can turn `i * stride` into a running
// accumulator.
class InvariantHoister : public StmtMutator {
 public:
  InvariantHoister(int* hoisted, int* csed) : hoisted_(hoisted), csed_(csed) {}

 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    Stmt base = StmtMutator::MutateFor(op, s);
    const auto* n = static_cast<const ForNode*>(base.get());
    if (n->for_type == ForType::kVectorized || n->for_type == ForType::kThreadBinding ||
        n->for_type == ForType::kVThread) {
      return base;
    }
    if (ContainsFor(n->body) || ContainsAllocate(n->body)) {
      return base;  // innermost loops only
    }
    std::unordered_set<const VarNode*> forbidden = VarsBoundInside(n->body);
    forbidden.insert(n->loop_var.get());
    // Step 1: hoist maximal invariant subexpressions out of the loop.
    std::vector<std::pair<std::string, Expr>> candidates;
    CandidateCollector collector(&forbidden, &candidates);
    ForEachRootExpr(n->body, [&](const Expr& e) { collector.Mutate(e); });
    Stmt body = n->body;
    std::unordered_map<std::string, Var> bindings;
    if (!candidates.empty()) {
      for (const auto& [key, expr] : candidates) {
        bindings.emplace(key, make_var("hoist" + std::to_string(next_id_++),
                                       expr->dtype));
      }
      CandidateReplacer replacer(&forbidden, &bindings);
      body = replacer.MutateStmt(body);
    }
    // Step 2: bind recurring loop-var multiplies inside the body. Only innermost
    // multiplies (mul-free operands) are considered, so candidates never nest.
    std::unordered_set<const VarNode*> mul_forbidden = VarsBoundInside(body);
    std::vector<std::pair<std::string, Expr>> muls;
    std::unordered_map<std::string, int> mul_count;
    ForEachRootExpr(body, [&](const Expr& root) {
      PostOrderVisit(root, [&](const Expr& e) {
        if (e->kind != ExprKind::kMul || !PureIntArith(e)) {
          return;
        }
        const auto* b = static_cast<const BinaryNode*>(e.get());
        if (ContainsMul(b->a) || ContainsMul(b->b) ||
            !UsesVar(e, n->loop_var.get()) || UsesAnyVar(e, mul_forbidden)) {
          return;
        }
        std::string key = ExprKey(e);
        if (mul_count[key]++ == 0) {
          muls.emplace_back(key, e);
        }
      });
    });
    std::vector<std::pair<std::string, Expr>> selected;
    std::unordered_map<std::string, Var> mul_bindings;
    for (const auto& [key, expr] : muls) {
      const auto* b = static_cast<const BinaryNode*>(expr.get());
      bool affine = b->a.get() == n->loop_var.get() || b->b.get() == n->loop_var.get();
      // Repeated products are worth one compute per iteration on their own;
      // single-use `i * stride` still wins by becoming a strength-reduced
      // accumulator in the VM.
      if (mul_count.at(key) >= 2 || affine) {
        selected.emplace_back(key, expr);
        mul_bindings.emplace(key, make_var("mulcse" + std::to_string(next_id_++),
                                           expr->dtype));
      }
    }
    if (candidates.empty() && selected.empty()) {
      return base;
    }
    if (!selected.empty()) {
      MulReplacer mul_replacer(&mul_bindings);
      body = mul_replacer.MutateStmt(body);
      for (auto it = selected.rbegin(); it != selected.rend(); ++it) {
        body = let_stmt(mul_bindings.at(it->first), it->second, std::move(body));
        ++*csed_;
      }
    }
    Stmt out = for_stmt(n->loop_var, n->min, n->extent, std::move(body), n->for_type,
                        n->thread_tag);
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      out = let_stmt(bindings.at(it->first), it->second, std::move(out));
      ++*hoisted_;
    }
    return out;
  }

 private:
  int* hoisted_;
  int* csed_;
  int next_id_ = 0;
};

}  // namespace

Stmt UnrollLoops(const Stmt& s, int64_t max_extent) {
  Unroller u(max_extent);
  return u.MutateStmt(s);
}

LoopSpecializeOptions LoopSpecializeOptions::FromEnv() {
  // Read fresh on every call (no static caching): tests flip the knobs per case.
  LoopSpecializeOptions opts;
  if (const char* s = std::getenv("TVMCPP_VM_SPECIALIZE")) {
    if (std::string(s) == "0") {
      return Disabled();
    }
  }
  if (const char* s = std::getenv("TVMCPP_UNROLL_LIMIT")) {
    opts.unroll_limit = std::atoll(s);
    if (opts.unroll_limit < 0) {
      opts.unroll_limit = 0;
    }
  }
  return opts;
}

LoopSpecializeOptions LoopSpecializeOptions::Disabled() {
  LoopSpecializeOptions opts;
  opts.unroll_limit = 0;
  opts.hoist_invariants = false;
  opts.strength_reduce = false;
  opts.peephole = false;
  return opts;
}

Stmt SpecializeLoops(const Stmt& s, const LoopSpecializeOptions& opts,
                     LoopSpecializeStats* stats) {
  LoopSpecializeStats local;
  LoopSpecializeStats* st = stats != nullptr ? stats : &local;
  Stmt body = s;
  if (opts.unroll_limit > 0) {
    // Unroll first: a fully-collapsed small nest turns its parent into an innermost
    // loop, which the hoister then gets to clean up.
    InnerLoopUnroller unroller(opts.unroll_limit, &st->unrolled_loops);
    body = unroller.MutateStmt(body);
  }
  if (opts.hoist_invariants) {
    InvariantHoister hoister(&st->hoisted_lets, &st->csed_muls);
    body = hoister.MutateStmt(body);
  }
  return body;
}

}  // namespace tvmcpp
