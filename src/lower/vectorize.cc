// VectorizeLoop: materializes ForType::kVectorized loops as vector IR.
//
// A vectorized loop of constant extent L is rewritten into a single-iteration body of
// vector expressions: the loop variable becomes Ramp(min, 1, L), scalar subexpressions
// are Broadcast to L lanes, and Load/Store become lane-typed. Lane-dependent guards
// (non-exact split conditions, inlined padding) are converted into predicated
// stores/loads so no lane evaluates an access its guard masks off. Loops wider than
// kMaxDirectLanes are strip-mined into full-width vector chunks plus a scalar tail.
//
// The pass is conservative: anything it cannot prove vectorizable (vector-dependent
// nested loop bounds, allocations or opaque intrinsic calls in the body, already-vector
// IR) leaves the loop untouched, and the engines keep executing it serially — exactly
// the pre-pass semantics.
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/intrin_table.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"
#include "src/lower/lower.h"

namespace tvmcpp {

namespace {

// Loops up to this extent vectorize in one shot (lanes == extent); wider loops are
// strip-mined at kStripLanes with a scalar tail for the remainder.
constexpr int64_t kMaxDirectLanes = 64;
constexpr int64_t kStripLanes = 16;

// Appends `pred` (lane-wise AND) to the predicate of every Load inside an expression.
// Used when a lane-dependent guard is pushed into the arms of a Select/if_then_else or
// into a guarded store: masked-off lanes must not trap on out-of-bounds reads. A load
// whose width differs from the mask (a lane-invariant load under a Broadcast) cannot
// carry the lane predicate — the scalar evaluation path would test it at one lane —
// so masking fails and the caller keeps the loop serial.
class LoadMasker : public ExprMutator {
 public:
  explicit LoadMasker(Expr pred) : pred_(std::move(pred)) {}

  bool ok() const { return ok_; }

 protected:
  Expr MutateLoad(const LoadNode* op, const Expr& e) override {
    Expr base = ExprMutator::MutateLoad(op, e);
    const auto* n = static_cast<const LoadNode*>(base.get());
    if (n->dtype.lanes() != pred_->dtype.lanes()) {
      ok_ = false;
      return base;
    }
    Expr pred = n->predicate == nullptr ? pred_ : logic_and(n->predicate, pred_);
    return load(n->dtype, n->buffer_var, n->index, pred);
  }

 private:
  Expr pred_;
  bool ok_ = true;
};

Expr MaskLoads(const Expr& e, const Expr& pred, bool* ok) {
  LoadMasker m(pred);
  Expr out = m.Mutate(e);
  *ok &= m.ok();
  return out;
}

// Computes the constant per-lane stride of a vector index expression: e is affine in
// the lane number with `*stride` per lane (Broadcast contributes 0, Ramp its constant
// stride, +/-/* combine). Returns false when the lane dependence is not provably
// affine (div/mod of the lane, gathers, ...).
bool LaneStride(const Expr& e, int64_t* stride) {
  if (e->dtype.lanes() == 1) {
    *stride = 0;
    return true;
  }
  switch (e->kind) {
    case ExprKind::kBroadcast:
      *stride = 0;
      return true;
    case ExprKind::kRamp:
      return is_const_int(static_cast<const RampNode*>(e.get())->stride, stride);
    case ExprKind::kAdd:
    case ExprKind::kSub: {
      const auto* n = static_cast<const BinaryNode*>(e.get());
      int64_t sa, sb;
      if (!LaneStride(n->a, &sa) || !LaneStride(n->b, &sb)) {
        return false;
      }
      *stride = e->kind == ExprKind::kAdd ? sa + sb : sa - sb;
      return true;
    }
    case ExprKind::kMul: {
      const auto* n = static_cast<const BinaryNode*>(e.get());
      auto const_side = [](const Expr& x, int64_t* c) {
        Expr v = x;
        if (v->kind == ExprKind::kBroadcast) {
          v = static_cast<const BroadcastNode*>(v.get())->value;
        }
        return is_const_int(v, c);
      };
      int64_t c, s;
      if (const_side(n->a, &c) && LaneStride(n->b, &s)) {
        *stride = c * s;
        return true;
      }
      if (const_side(n->b, &c) && LaneStride(n->a, &s)) {
        *stride = c * s;
        return true;
      }
      return false;
    }
    default:
      return false;
  }
}

// True when `e` provably addresses a distinct element per lane.
bool LaneInjective(const Expr& e) {
  int64_t stride;
  return LaneStride(e, &stride) && stride != 0;
}

// Whole-body dependence check on a vectorized loop body. Serial execution
// interleaves all statements per iteration, while the vector form completes each
// statement for all lanes before the next — so a load of a buffer that the body also
// stores is only safe when every store to that buffer hits exactly the load's
// address lane-for-lane: structurally equal indices that are injective across lanes
// (the read-modify-write pattern C[i] = C[i] + ...). Anything else — a shifted index
// (A[i+1] = A[i] + 1), a colliding index (C[i/2] += A[i]), or a cross-statement
// overlap ({A[i] = B[i]; C[i] = A[i+1]}) — reorders reads against writes and must
// keep the loop serial.
class DependenceScanner : public StmtVisitor {
 public:
  bool Hazardous(const Stmt& body) {
    PostOrderVisitStmt(body, [&](const Stmt& st) {
      if (st->kind == StmtKind::kStore) {
        const auto* n = static_cast<const StoreNode*>(st.get());
        stores_[n->buffer_var.get()].push_back(n->index);
      }
    });
    if (stores_.empty()) {
      return false;
    }
    VisitStmt(body);
    return hazardous_;
  }

 protected:
  void VisitLoad(const LoadNode* op) override {
    ExprVisitor::VisitLoad(op);
    auto it = stores_.find(op->buffer_var.get());
    if (it == stores_.end()) {
      return;
    }
    for (const Expr& store_idx : it->second) {
      if (!LaneInjective(store_idx) || !StructuralEqual(store_idx, op->index)) {
        hazardous_ = true;
      }
    }
  }

 private:
  std::unordered_map<const VarNode*, std::vector<Expr>> stores_;
  bool hazardous_ = false;
};

// True when `e` contains an integer division/modulo whose divisor is not a non-zero
// constant. The VM evaluates masked-off and not-taken lanes eagerly (loads are
// maskable, arithmetic is not), so such an expression could trap with a division by
// zero on a lane the guard excluded — the interpreter's lazy per-lane evaluation
// would not. Callers bail to serial in that case.
bool HasTrappingDivMod(const Expr& e) {
  bool found = false;
  PostOrderVisit(e, [&](const Expr& x) {
    if (x->kind != ExprKind::kDiv && x->kind != ExprKind::kMod) {
      return;
    }
    if (x->kind == ExprKind::kDiv && x->dtype.is_float()) {
      return;  // float division does not trap
    }
    Expr d = static_cast<const BinaryNode*>(x.get())->b;
    if (d->kind == ExprKind::kBroadcast) {
      d = static_cast<const BroadcastNode*>(d.get())->value;
    }
    int64_t v;
    if (!(is_const_int(d, &v) && v != 0)) {
      found = true;
    }
  });
  return found;
}

// Rewrites one loop body: loop_var -> Ramp(base, 1, lanes), propagating vector dtypes
// upward. Sets failed() instead of throwing so the caller can keep the serial loop.
class Vectorizer : public StmtMutator {
 public:
  Vectorizer(const VarNode* var, Expr base, int lanes)
      : var_(var), lanes_(lanes), ramp_(ramp(std::move(base), make_int(1), lanes)) {}

  bool failed() const { return failed_; }
  const std::string& reason() const { return reason_; }

 protected:
  Expr MutateVar(const VarNode* op, const Expr& e) override {
    return op == var_ ? ramp_ : e;
  }

  Expr MutateBinary(const BinaryNode* op, const Expr& e) override {
    Expr a = Mutate(op->a);
    Expr b = Mutate(op->b);
    if (a->dtype.lanes() == 1 && b->dtype.lanes() == 1) {
      if (a.get() == op->a.get() && b.get() == op->b.get()) {
        return e;
      }
      return RebuildBinary(op->kind, std::move(a), std::move(b));
    }
    a = VectorizeTo(std::move(a));
    b = VectorizeTo(std::move(b));
    if (failed_) {
      return e;
    }
    return RebuildBinary(op->kind, std::move(a), std::move(b));
  }

  Expr MutateCast(const CastNode* op, const Expr& e) override {
    Expr v = Mutate(op->value);
    if (v->dtype.lanes() == 1) {
      return v.get() == op->value.get() ? e : cast(op->dtype, v);
    }
    return cast(op->dtype.with_lanes(v->dtype.lanes()), v);
  }

  Expr MutateNot(const NotNode* op, const Expr& e) override {
    Expr a = Mutate(op->a);
    return a.get() == op->a.get() ? e : logic_not(a);
  }

  Expr MutateLoad(const LoadNode* op, const Expr& e) override {
    Expr index = Mutate(op->index);
    Expr pred = op->predicate == nullptr ? nullptr : Mutate(op->predicate);
    bool vec = index->dtype.lanes() > 1 || (pred != nullptr && pred->dtype.lanes() > 1);
    if (!vec) {
      if (index.get() == op->index.get() &&
          (op->predicate == nullptr || pred.get() == op->predicate.get())) {
        return e;
      }
      return load(op->dtype, op->buffer_var, index, pred);
    }
    if (op->dtype.lanes() != 1) {
      return FailWith(e, "load is already vector-typed");
    }
    index = VectorizeTo(std::move(index));
    if (pred != nullptr) {
      pred = VectorizeTo(std::move(pred));
      if (HasTrappingDivMod(index)) {
        // Masked lanes still evaluate the index eagerly on the VM.
        return FailWith(e, "trapping div/mod in a predicated load index");
      }
      bool maskable = true;
      index = MaskLoads(index, pred, &maskable);
      if (!maskable) {
        return FailWith(e, "lane-invariant load in a predicated load index");
      }
    }
    if (failed_) {
      return e;
    }
    return load(op->dtype.with_lanes(lanes_), op->buffer_var, index, pred);
  }

  Expr MutateSelect(const SelectNode* op, const Expr& e) override {
    return MutateConditional(op->condition, op->true_value, op->false_value, e);
  }

  Expr MutateCall(const CallNode* op, const Expr& e) override {
    if (op->name == "if_then_else" && op->args.size() == 3) {
      return MutateConditional(op->args[0], op->args[1], op->args[2], e);
    }
    bool any_vec = false;
    bool changed = false;
    std::vector<Expr> args;
    args.reserve(op->args.size());
    for (const Expr& a : op->args) {
      Expr m = Mutate(a);
      any_vec |= m->dtype.lanes() > 1;
      changed |= m.get() != a.get();
      args.push_back(std::move(m));
    }
    if (!any_vec) {
      if (!changed) {
        return e;
      }
      return std::make_shared<CallNode>(op->dtype, op->name, std::move(args),
                                        op->call_type);
    }
    // Lane-wise pure math intrinsics vectorize; opaque/hardware intrinsics do not.
    if (op->call_type == CallType::kPureIntrinsic && args.size() == 1 &&
        (IsUnaryMathIntrin(op->name) || op->name == "popcount")) {
      return std::make_shared<CallNode>(op->dtype.with_lanes(lanes_), op->name,
                                        std::move(args), op->call_type);
    }
    return FailWith(e, "call " + op->name + " with vector argument");
  }

  Expr MutateLet(const LetNode* op, const Expr& e) override {
    Expr value = Mutate(op->value);
    if (value->dtype.lanes() == 1) {
      Expr body = Mutate(op->body);
      if (value.get() == op->value.get() && body.get() == op->body.get()) {
        return e;
      }
      return let(op->var, value, body);
    }
    // Vector-valued binding: inline the (pure) definition so neither engine needs
    // vector-typed environment slots.
    VarMap vmap{{op->var.get(), op->value}};
    return Mutate(Substitute(op->body, vmap));
  }

  Expr MutateRamp(const RampNode* op, const Expr& e) override {
    Expr base = Mutate(op->base);
    Expr stride = Mutate(op->stride);
    if (base.get() == op->base.get() && stride.get() == op->stride.get()) {
      return e;
    }
    return FailWith(e, "ramp over the vectorized variable");
  }

  Expr MutateBroadcast(const BroadcastNode* op, const Expr& e) override {
    Expr v = Mutate(op->value);
    if (v.get() == op->value.get()) {
      return e;
    }
    return FailWith(e, "broadcast over the vectorized variable");
  }

  Expr MutateReduce(const ReduceNode* op, const Expr& e) override {
    return FailWith(e, "reduce in vectorized body");
  }

  Expr MutateTensorRead(const TensorReadNode* op, const Expr& e) override {
    return FailWith(e, "tensor read in vectorized body");
  }

  Stmt MutateStore(const StoreNode* op, const Stmt& s) override {
    Expr index = Mutate(op->index);
    Expr value = Mutate(op->value);
    Expr pred = op->predicate == nullptr ? nullptr : Mutate(op->predicate);
    bool vec = index->dtype.lanes() > 1 || value->dtype.lanes() > 1 ||
               (pred != nullptr && pred->dtype.lanes() > 1);
    if (!vec) {
      if (index.get() == op->index.get() && value.get() == op->value.get() &&
          (op->predicate == nullptr || pred.get() == op->predicate.get())) {
        return s;
      }
      return store(op->buffer_var, value, index, pred);
    }
    if (index->dtype.lanes() == 1) {
      // Lane-invariant address (e.g. a reduction into one element): the serial loop
      // carries a dependence across lanes, so vectorizing would drop all but the last
      // write. Keep the loop serial.
      FailWith(index, "vectorized store to a lane-invariant address");
      return s;
    }
    index = VectorizeTo(std::move(index));
    value = VectorizeTo(std::move(value));
    if (pred != nullptr) {
      pred = VectorizeTo(std::move(pred));
    }
    if (failed_) {
      return s;
    }
    return store(op->buffer_var, value, index, pred);
  }

  Stmt MutateIfThenElse(const IfThenElseNode* op, const Stmt& s) override {
    Expr cond = Mutate(op->condition);
    if (cond->dtype.lanes() == 1) {
      return StmtMutator::MutateIfThenElse(op, s);
    }
    // Lane-dependent guard (non-exact split): push it into the guarded stores as a
    // lane predicate. Anything but a plain store nest under such a guard bails out.
    if (op->else_case != nullptr) {
      FailWith(Expr(cond), "lane-dependent guard with an else branch");
      return s;
    }
    Stmt body = MutateStmt(op->then_case);
    if (failed_) {
      return s;
    }
    Stmt predicated = PredicateStores(body, cond);
    if (predicated == nullptr) {
      FailWith(Expr(cond), "lane-dependent guard over a non-store body");
      return s;
    }
    return predicated;
  }

  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    Expr mn = Mutate(op->min);
    Expr extent = Mutate(op->extent);
    if (mn->dtype.lanes() != 1 || extent->dtype.lanes() != 1) {
      FailWith(extent, "loop bounds depend on the vectorized variable");
      return s;
    }
    Stmt body = MutateStmt(op->body);
    if (mn.get() == op->min.get() && extent.get() == op->extent.get() &&
        body.get() == op->body.get()) {
      return s;
    }
    return for_stmt(op->loop_var, mn, extent, body, op->for_type, op->thread_tag);
  }

  Stmt MutateAllocate(const AllocateNode* op, const Stmt& s) override {
    FailWith(Expr(nullptr), "allocation inside a vectorized body");
    return s;
  }

  Stmt MutateAssert(const AssertStmtNode* op, const Stmt& s) override {
    Expr cond = Mutate(op->condition);
    if (cond->dtype.lanes() != 1) {
      FailWith(cond, "assert condition depends on the vectorized variable");
      return s;
    }
    return StmtMutator::MutateAssert(op, s);
  }

  Stmt MutateLetStmt(const LetStmtNode* op, const Stmt& s) override {
    Expr value = Mutate(op->value);
    if (value->dtype.lanes() == 1) {
      Stmt body = MutateStmt(op->body);
      if (value.get() == op->value.get() && body.get() == op->body.get()) {
        return s;
      }
      return let_stmt(op->var, value, body);
    }
    VarMap vmap{{op->var.get(), op->value}};
    return MutateStmt(Substitute(op->body, vmap));
  }

  Stmt MutateEvaluate(const EvaluateNode* op, const Stmt& s) override {
    Expr v = Mutate(op->value);
    if (v->dtype.lanes() != 1) {
      FailWith(v, "evaluate of a vector expression");
      return s;
    }
    return v.get() == op->value.get() ? s : evaluate(v);
  }

 private:
  // Broadcasts a scalar to the vectorization width; width mismatches fail.
  Expr VectorizeTo(Expr e) {
    if (e->dtype.lanes() == lanes_) {
      return e;
    }
    if (e->dtype.lanes() == 1) {
      return broadcast(std::move(e), lanes_);
    }
    return FailWith(e, "mixed vector widths");
  }

  Expr FailWith(const Expr& e, const std::string& why) {
    if (!failed_) {
      failed_ = true;
      reason_ = why;
    }
    return e;
  }

  static Expr RebuildBinary(ExprKind kind, Expr a, Expr b) {
    switch (kind) {
      case ExprKind::kAdd: return add(std::move(a), std::move(b));
      case ExprKind::kSub: return sub(std::move(a), std::move(b));
      case ExprKind::kMul: return mul(std::move(a), std::move(b));
      case ExprKind::kDiv: return div(std::move(a), std::move(b));
      case ExprKind::kMod: return mod(std::move(a), std::move(b));
      case ExprKind::kMin: return min(std::move(a), std::move(b));
      case ExprKind::kMax: return max(std::move(a), std::move(b));
      case ExprKind::kEQ: return eq(std::move(a), std::move(b));
      case ExprKind::kNE: return ne(std::move(a), std::move(b));
      case ExprKind::kLT: return lt(std::move(a), std::move(b));
      case ExprKind::kLE: return le(std::move(a), std::move(b));
      case ExprKind::kGT: return gt(std::move(a), std::move(b));
      case ExprKind::kGE: return ge(std::move(a), std::move(b));
      case ExprKind::kAnd: return logic_and(std::move(a), std::move(b));
      case ExprKind::kOr: return logic_or(std::move(a), std::move(b));
      default:
        LOG(FATAL) << "not a binary kind";
    }
  }

  // Lane-dependent conditional: both arms are evaluated lane-wise and blended, so the
  // guard is pushed into each arm's loads (a masked-off lane must not trap on the
  // access its guard was protecting). Loads read 0 on masked lanes; those lanes are
  // discarded by the select.
  Expr MutateConditional(const Expr& cond0, const Expr& tval0, const Expr& fval0,
                         const Expr& e) {
    Expr cond = Mutate(cond0);
    Expr tval = Mutate(tval0);
    Expr fval = Mutate(fval0);
    bool vec = cond->dtype.lanes() > 1 || tval->dtype.lanes() > 1 ||
               fval->dtype.lanes() > 1;
    if (!vec) {
      if (cond.get() == cond0.get() && tval.get() == tval0.get() &&
          fval.get() == fval0.get()) {
        return e;
      }
      if (e->kind == ExprKind::kSelect) {
        return select(cond, tval, fval);
      }
      return if_then_else(cond, tval, fval);
    }
    cond = VectorizeTo(std::move(cond));
    tval = VectorizeTo(std::move(tval));
    fval = VectorizeTo(std::move(fval));
    if (failed_) {
      return e;
    }
    if (HasTrappingDivMod(tval) || HasTrappingDivMod(fval)) {
      return FailWith(e, "trapping div/mod under a lane-dependent conditional");
    }
    bool maskable = true;
    tval = MaskLoads(tval, cond, &maskable);
    fval = MaskLoads(fval, logic_not(cond), &maskable);
    if (!maskable) {
      return FailWith(e, "lane-invariant load under a lane-dependent conditional");
    }
    return select(cond, tval, fval);
  }

  // Applies `cond` as a lane predicate to every store in a store-only statement tree
  // (also masking loads inside the stored values). Returns nullptr when the tree
  // contains anything but stores/seqs, when a store's address is lane-invariant (the
  // scalar store path would test the vector predicate at lane 0 only), or when a
  // masked lane could still trap in eagerly evaluated arithmetic.
  static Stmt PredicateStores(const Stmt& s, const Expr& cond) {
    if (s == nullptr) {
      return nullptr;
    }
    if (s->kind == StmtKind::kStore) {
      const auto* n = static_cast<const StoreNode*>(s.get());
      if (n->index->dtype.lanes() == 1 || HasTrappingDivMod(n->value) ||
          HasTrappingDivMod(n->index)) {
        return nullptr;
      }
      // Loads nested in the index are masked too: the VM evaluates the full index
      // vector even for lanes the store predicate skips.
      bool maskable = true;
      Expr value = MaskLoads(n->value, cond, &maskable);
      Expr index = MaskLoads(n->index, cond, &maskable);
      if (!maskable) {
        return nullptr;
      }
      Expr pred = n->predicate == nullptr ? cond : logic_and(n->predicate, cond);
      return store(n->buffer_var, value, index, pred);
    }
    if (s->kind == StmtKind::kSeq) {
      std::vector<Stmt> out;
      for (const Stmt& st : static_cast<const SeqStmtNode*>(s.get())->seq) {
        Stmt p = PredicateStores(st, cond);
        if (p == nullptr) {
          return nullptr;
        }
        out.push_back(std::move(p));
      }
      return seq(std::move(out));
    }
    return nullptr;
  }

  const VarNode* var_;
  int lanes_;
  Expr ramp_;
  bool failed_ = false;
  std::string reason_;
};

class LoopVectorizer : public StmtMutator {
 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    Stmt base = StmtMutator::MutateFor(op, s);  // inner loops vectorize first
    const auto* n = static_cast<const ForNode*>(base.get());
    if (n->for_type != ForType::kVectorized) {
      return base;
    }
    int64_t extent, mn;
    if (!is_const_int(n->extent, &extent) || !is_const_int(n->min, &mn) || extent < 2) {
      return base;  // dynamic or trivial extent: keep serial semantics
    }
    if (extent <= kMaxDirectLanes) {
      Stmt v = TryVectorize(n->loop_var, make_int(mn), static_cast<int>(extent),
                            n->body);
      return v == nullptr ? base : v;
    }
    // Strip-mine: full-width vector chunks plus a scalar tail for the remainder.
    int64_t chunks = extent / kStripLanes;
    int64_t tail = extent % kStripLanes;
    Var chunk = make_var(n->loop_var->name + ".vo", n->loop_var->dtype);
    Expr chunk_base = Simplify(make_int(mn) + Expr(chunk) * make_int(kStripLanes));
    Stmt vbody = TryVectorize(n->loop_var, chunk_base, static_cast<int>(kStripLanes),
                              n->body);
    if (vbody == nullptr) {
      return base;
    }
    Stmt vloop = for_stmt(chunk, make_int(0), make_int(chunks), vbody);
    if (tail == 0) {
      return vloop;
    }
    Stmt tail_loop = for_stmt(n->loop_var, make_int(mn + chunks * kStripLanes),
                              make_int(tail), n->body);
    return seq({std::move(vloop), std::move(tail_loop)});
  }

 private:
  static Stmt TryVectorize(const Var& loop_var, Expr lane_base, int lanes,
                           const Stmt& body) {
    Vectorizer vec(loop_var.get(), std::move(lane_base), lanes);
    Stmt out = vec.MutateStmt(body);
    if (vec.failed()) {
      LOG(INFO) << "vectorize: loop over " << loop_var->name
                << " stays serial: " << vec.reason();
      return nullptr;
    }
    DependenceScanner deps;
    if (deps.Hazardous(out)) {
      LOG(INFO) << "vectorize: loop over " << loop_var->name
                << " stays serial: cross-lane load/store dependence";
      return nullptr;
    }
    return Simplify(out);
  }
};

}  // namespace

Stmt VectorizeLoop(const Stmt& s) {
  LoopVectorizer v;
  return v.MutateStmt(s);
}

}  // namespace tvmcpp
