#include "src/lower/lower.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/printer.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"
#include "src/lower/intset.h"

namespace tvmcpp {

namespace {

// Realized buffer of one operation output.
struct BufferInfo {
  Var var;
  DataType dtype;
  std::vector<int64_t> extents;  // realized extents (local region size)
  std::vector<Expr> offsets;     // global coordinate of the local origin per dim (may be empty)
  std::string scope = "global";
  bool external = false;
};

// Computes the flat index of local `coords` in a row-major buffer.
Expr FlattenIndex(const std::vector<Expr>& coords, const std::vector<int64_t>& extents) {
  CHECK_EQ(coords.size(), extents.size());
  Expr index = make_int(0);
  for (size_t i = 0; i < coords.size(); ++i) {
    index = index * make_int(extents[i]) + coords[i];
  }
  return Simplify(index);
}

// One scheduled loop to be emitted, outermost first.
struct LoopSpec {
  IterVar iv;
  Var loop_var;  // may be a shared thread var
  Expr extent;   // constant after bound inference
  ForType for_type = ForType::kSerial;
  std::string thread_tag;
  bool emit_loop = true;  // false when reusing an active thread var
  const IterVarAttr* attr = nullptr;
};

// Per-stage inferred bounds and leaf-to-root value maps.
struct StageBounds {
  std::unordered_map<const IterVarNode*, Expr> extent;       // local extents
  std::unordered_map<const IterVarNode*, Expr> local_value;  // local value in leaf vars
  std::vector<Expr> predicates;                              // non-exact split guards
};

class LowerContext {
 public:
  LowerContext(Schedule sch, const std::vector<Tensor>& args, std::string name)
      : sch_(std::move(sch)), name_(std::move(name)) {
    for (const Tensor& t : args) {
      RegisterExternal(t);
      arg_order_.push_back(t);
    }
  }

  LoweredFunc Run() {
    InlineStages();
    BuildAttachMap();
    std::vector<Stmt> pipeline;
    std::vector<const OperationNode*> internal_allocs;
    for (const Stage& stage : sch_->stages) {
      if (dynamic_cast<ComputeOpNode*>(stage->op.get()) == nullptr) {
        continue;  // placeholder
      }
      if (stage->attach_type != AttachType::kRoot) {
        continue;  // inline or attached
      }
      if (!buffers_.count(stage->op.get())) {
        RegisterInternal(stage, FullExtents(stage->op), {});
        internal_allocs.push_back(stage->op.get());
      }
      pipeline.push_back(MakeStageNest(stage));
    }
    Stmt body = seq(std::move(pipeline));
    for (auto it = internal_allocs.rbegin(); it != internal_allocs.rend(); ++it) {
      const BufferInfo& info = buffers_.at(*it);
      std::vector<Expr> extents;
      for (int64_t e : info.extents) {
        extents.push_back(make_int(e));
      }
      body = allocate(info.var, info.dtype, std::move(extents), info.scope, body);
    }
    body = analyzer_.Simplify(body);
    body = HoistSharedAllocations(body);
    LoweredFunc func;
    func.name = name_;
    for (const Tensor& t : arg_order_) {
      const BufferInfo& info = buffers_.at(t.op().get());
      func.args.push_back(BufferArg{info.var, info.dtype, info.extents, t.name()});
    }
    func.body = std::move(body);
    return func;
  }

 private:
  friend class StageEmitter;

  std::vector<int64_t> FullExtents(const Operation& op) const {
    std::vector<int64_t> extents;
    for (const Expr& e : op->output_shape(0)) {
      extents.push_back(get_const_int(Simplify(e)));
    }
    return extents;
  }

  void RegisterExternal(const Tensor& t) {
    if (buffers_.count(t.op().get())) {
      return;
    }
    BufferInfo info;
    info.var = make_var(t.name(), DataType::Handle());
    info.dtype = t.dtype();
    info.extents = FullExtents(t.op());
    info.external = true;
    buffers_.emplace(t.op().get(), std::move(info));
  }

  void RegisterInternal(const Stage& stage, std::vector<int64_t> extents,
                        std::vector<Expr> offsets) {
    BufferInfo info;
    info.var = make_var(stage->op->name, DataType::Handle());
    info.dtype = stage->op->output_dtype(0);
    info.extents = std::move(extents);
    info.offsets = std::move(offsets);
    info.scope = stage->scope;
    buffers_[stage->op.get()] = std::move(info);
  }

  // Substitutes inline stages' bodies into every consumer (in dependency order, so chains
  // of inlined stages resolve).
  void InlineStages() {
    for (const Stage& stage : sch_->stages) {
      if (stage->attach_type != AttachType::kInline) {
        continue;
      }
      auto* cop = dynamic_cast<ComputeOpNode*>(stage->op.get());
      CHECK(cop != nullptr);
      const OperationNode* target = stage->op.get();
      const std::vector<IterVar>& axis = cop->axis;
      Expr body = cop->body[0];
      class Inliner : public ExprMutator {
       public:
        Inliner(const OperationNode* target, const std::vector<IterVar>& axis,
                const Expr& body)
            : target_(target), axis_(axis), body_(body) {}

       protected:
        Expr MutateTensorRead(const TensorReadNode* op, const Expr& e) override {
          Expr base = ExprMutator::MutateTensorRead(op, e);
          const auto* n = static_cast<const TensorReadNode*>(base.get());
          if (n->op.get() != static_cast<const void*>(target_)) {
            return base;
          }
          VarMap vmap;
          for (size_t i = 0; i < axis_.size(); ++i) {
            vmap[axis_[i]->var.get()] = n->indices[i];
          }
          return Substitute(body_, vmap);
        }

       private:
        const OperationNode* target_;
        const std::vector<IterVar>& axis_;
        const Expr& body_;
      };
      Inliner inliner(target, axis, body);
      for (const Stage& consumer : sch_->stages) {
        auto* ccop = dynamic_cast<ComputeOpNode*>(consumer->op.get());
        if (ccop == nullptr || consumer.get() == stage.get()) {
          continue;
        }
        std::vector<Expr> new_body;
        for (const Expr& e : ccop->body) {
          new_body.push_back(inliner.Mutate(e));
        }
        ccop->body = std::move(new_body);
      }
    }
  }

  void BuildAttachMap() {
    for (const Stage& stage : sch_->stages) {
      if (stage->attach_type == AttachType::kScope) {
        Stage parent = stage->attach_stage.lock();
        CHECK(parent != nullptr) << "attach parent expired";
        attach_map_[parent.get()].emplace_back(stage->attach_ivar.get(), stage);
      }
    }
  }

  StageBounds InferStageBounds(const Stage& stage, const std::vector<int64_t>& root_extents) {
    StageBounds b;
    const auto* cop = dynamic_cast<const ComputeOpNode*>(stage->op.get());
    CHECK(cop != nullptr);
    for (size_t i = 0; i < cop->axis.size(); ++i) {
      b.extent[cop->axis[i].get()] = make_int(root_extents[i]);
    }
    for (const IterVar& rv : cop->reduce_axis) {
      b.extent[rv.get()] = Simplify(rv->dom.extent());
    }
    for (const IterVarRelation& rel : stage->relations) {
      if (rel.kind == IterVarRelation::Kind::kSplit) {
        Expr parent_extent = b.extent.at(rel.parent.get());
        int64_t factor = get_const_int(rel.factor);
        int64_t pe;
        if (is_const_int(parent_extent, &pe) && pe <= factor) {
          b.extent[rel.outer.get()] = make_int(1);
          b.extent[rel.inner.get()] = make_int(pe);
        } else {
          b.extent[rel.outer.get()] =
              Simplify((parent_extent + make_int(factor - 1)) / make_int(factor));
          b.extent[rel.inner.get()] = make_int(factor);
        }
      } else {
        b.extent[rel.fused.get()] =
            Simplify(b.extent.at(rel.outer.get()) * b.extent.at(rel.inner.get()));
      }
    }
    for (const IterVar& leaf : stage->leaf_iter_vars) {
      b.local_value[leaf.get()] = leaf->var;
    }
    for (auto it = stage->relations.rbegin(); it != stage->relations.rend(); ++it) {
      const IterVarRelation& rel = *it;
      if (rel.kind == IterVarRelation::Kind::kSplit) {
        Expr outer_v = b.local_value.at(rel.outer.get());
        Expr inner_v = b.local_value.at(rel.inner.get());
        int64_t factor = get_const_int(rel.factor);
        Expr inner_extent = b.extent.at(rel.inner.get());
        // When the parent collapsed into the inner var (extent <= factor), outer is 0.
        Expr parent_v = Simplify(outer_v * inner_extent + inner_v);
        (void)factor;
        b.local_value[rel.parent.get()] = parent_v;
        Expr parent_extent = b.extent.at(rel.parent.get());
        Expr covered =
            Simplify(b.extent.at(rel.outer.get()) * b.extent.at(rel.inner.get()));
        int64_t pe, ce;
        if (!(is_const_int(parent_extent, &pe) && is_const_int(covered, &ce) && pe == ce)) {
          b.predicates.push_back(lt(parent_v, parent_extent));
        }
      } else {
        Expr fused_v = b.local_value.at(rel.fused.get());
        Expr inner_extent = b.extent.at(rel.inner.get());
        b.local_value[rel.outer.get()] = Simplify(fused_v / inner_extent);
        b.local_value[rel.inner.get()] = Simplify(fused_v % inner_extent);
      }
    }
    return b;
  }

  Stmt MakeStageNest(const Stage& stage);

  Schedule sch_;
  std::string name_;
  std::vector<Tensor> arg_order_;
  std::unordered_map<const OperationNode*, BufferInfo> buffers_;
  std::unordered_map<const StageNode*, std::vector<std::pair<const IterVarNode*, Stage>>>
      attach_map_;
  std::map<std::string, std::pair<Var, int64_t>> thread_env_;
  // Active vthread loops (var, extent), innermost last.
  std::vector<std::pair<Var, int64_t>> active_vthreads_;
  Analyzer analyzer_;
};

// Emits one stage's loop nest, descending outermost-in so the thread environment and
// analyzer bindings are active while children and bodies are generated.
class StageEmitter {
 public:
  StageEmitter(LowerContext* ctx, Stage stage) : ctx_(ctx), stage_(std::move(stage)) {
    cop_ = static_cast<const ComputeOpNode*>(stage_->op.get());
    const BufferInfo& out_info = ctx_->buffers_.at(stage_->op.get());
    bounds_ = ctx_->InferStageBounds(stage_, out_info.extents);
    BuildLoops();
    BuildValueMaps(out_info);
    has_reduce_ = !cop_->reduce_axis.empty() && cop_->body[0]->kind == ExprKind::kReduce;
    tensorize_pos_ = loops_.size();
    for (size_t i = 0; i < loops_.size(); ++i) {
      if (loops_[i].attr != nullptr && loops_[i].attr->tensor_intrin != nullptr) {
        tensorize_pos_ = i;
        break;
      }
    }
    first_reduce_pos_ = loops_.size();
    for (size_t i = 0; i < loops_.size(); ++i) {
      if (loops_[i].iv->type == IterVarType::kCommReduce) {
        first_reduce_pos_ = i;
        break;
      }
    }
  }

  Stmt Emit() {
    Stmt result = EmitFrom(0, /*in_update=*/false);
    for (const VarNode* v : bound_vars_) {
      ctx_->analyzer_.Unbind(v);
    }
    for (const std::string& tag : registered_tags_) {
      ctx_->thread_env_.erase(tag);
    }
    return result;
  }

 private:
  void BuildLoops() {
    for (const IterVar& leaf : stage_->leaf_iter_vars) {
      LoopSpec spec;
      spec.iv = leaf;
      spec.extent = bounds_.extent.at(leaf.get());
      spec.attr = stage_->GetAttr(leaf);
      spec.loop_var = leaf->var;
      if (spec.attr != nullptr) {
        spec.for_type = spec.attr->for_type;
        if (spec.attr->bind_thread != nullptr) {
          const IterVar& thr = spec.attr->bind_thread;
          spec.thread_tag = thr->thread_tag;
          if (thr->type == IterVarType::kThreadIndex) {
            int64_t extent_v = get_const_int(spec.extent);
            auto env = ctx_->thread_env_.find(spec.thread_tag);
            if (env != ctx_->thread_env_.end()) {
              spec.emit_loop = false;
              spec.loop_var = env->second.first;
              CHECK_LE(extent_v, env->second.second)
                  << "thread extent exceeds active " << spec.thread_tag;
              if (extent_v < env->second.second) {
                reuse_predicates_.push_back(lt(spec.loop_var, make_int(extent_v)));
              }
            } else {
              spec.loop_var = thr->var;
            }
          } else {
            // Virtual threads always emit their own loop.
            spec.loop_var = thr->var;
          }
        }
      }
      loops_.push_back(std::move(spec));
    }
  }

  void BuildValueMaps(const BufferInfo& out_info) {
    VarMap leaf_rename;
    for (const LoopSpec& spec : loops_) {
      if (spec.loop_var.get() != spec.iv->var.get()) {
        leaf_rename[spec.iv->var.get()] = spec.loop_var;
      }
    }
    for (size_t i = 0; i < cop_->axis.size(); ++i) {
      const IterVar& iv = cop_->axis[i];
      Expr local = Substitute(bounds_.local_value.at(iv.get()), leaf_rename);
      local_map_[iv->var.get()] = local;
      Expr offset = i < out_info.offsets.size() && out_info.offsets[i] != nullptr
                        ? out_info.offsets[i]
                        : make_int(0);
      global_map_[iv->var.get()] = Simplify(local + offset);
    }
    for (const IterVar& rv : cop_->reduce_axis) {
      Expr local = Substitute(bounds_.local_value.at(rv.get()), leaf_rename);
      local_map_[rv->var.get()] = local;
      global_map_[rv->var.get()] = Simplify(local + rv->dom.min());
    }
    for (const Expr& p : bounds_.predicates) {
      predicates_.push_back(Substitute(p, leaf_rename));
    }
    for (const Expr& p : reuse_predicates_) {
      predicates_.push_back(p);
    }
  }

  // Emits loops from position `i` to the end.
  Stmt EmitFrom(size_t i, bool in_update) {
    // Reduction split point: emit Seq(init_nest, update_nest).
    if (has_reduce_ && !in_update && i == first_reduce_pos_) {
      Stmt init = EmitInit();
      Stmt update = EmitFrom(i, /*in_update=*/true);
      return seq({std::move(init), std::move(update)});
    }
    // Tensorize cut: everything below is replaced with an intrinsic call.
    if (i == tensorize_pos_ && i < loops_.size()) {
      const TensorIntrinPtr& intrin = loops_[i].attr->tensor_intrin;
      std::string call_name = intrin->intrin_name;
      if (has_reduce_ && !intrin->update_name.empty()) {
        call_name = intrin->update_name;
      }
      return GuardPredicates(MakeIntrinCall(call_name, /*include_inputs=*/true),
                             /*for_init=*/false);
    }
    if (i == loops_.size()) {
      return GuardPredicates(EmitLeafBody(in_update), /*for_init=*/false);
    }
    const LoopSpec& spec = loops_[i];
    // In the update pass, the common outer spatial loops [0, first_reduce_pos) were
    // already emitted by the pre-reduce recursion; skip them.
    // (EmitFrom(i, true) is only called with i >= first_reduce_pos_.)
    bool registered = false;
    if (spec.emit_loop && !spec.thread_tag.empty() &&
        spec.attr->bind_thread->type == IterVarType::kThreadIndex) {
      ctx_->thread_env_[spec.thread_tag] = {spec.loop_var, get_const_int(spec.extent)};
      registered_tags_.push_back(spec.thread_tag);
      registered = true;
    }
    bool registered_vthread = false;
    if (spec.emit_loop && spec.for_type == ForType::kVThread) {
      ctx_->active_vthreads_.emplace_back(spec.loop_var, get_const_int(spec.extent));
      registered_vthread = true;
    }
    int64_t ev;
    if (spec.emit_loop && is_const_int(spec.extent, &ev)) {
      ctx_->analyzer_.Bind(spec.loop_var.get(), 0, ev - 1);
      bound_vars_.push_back(spec.loop_var.get());
    }
    // Children must be generated first: they register the buffers the body reads.
    bool any_shared = false;
    std::vector<PendingAlloc> allocs;
    std::vector<Stmt> children = EmitChildren(spec.iv, i, &any_shared, &allocs);
    Stmt inner = EmitFrom(i + 1, in_update);
    inner = CombineChildren(std::move(children), any_shared, std::move(inner));
    // Child buffers live across producer and consumer: allocate around both.
    for (auto it2 = allocs.rbegin(); it2 != allocs.rend(); ++it2) {
      inner = allocate(it2->var, it2->dtype, it2->extents, it2->scope, inner);
    }
    (void)registered;
    if (registered_vthread) {
      ctx_->active_vthreads_.pop_back();
    }
    if (spec.emit_loop) {
      return for_stmt(spec.loop_var, make_int(0), spec.extent, inner, spec.for_type,
                      spec.thread_tag);
    }
    return inner;
  }

  // Init nest of a reduction: spatial leaf loops at/after the first reduce position.
  Stmt EmitInit() {
    std::vector<const LoopSpec*> init_loops;
    bool tensorized_init = false;
    for (size_t i = first_reduce_pos_; i < loops_.size(); ++i) {
      if (loops_[i].iv->type == IterVarType::kCommReduce) {
        continue;
      }
      if (i >= tensorize_pos_) {
        tensorized_init = true;
        break;
      }
      init_loops.push_back(&loops_[i]);
    }
    const auto* red = static_cast<const ReduceNode*>(cop_->body[0].get());
    Stmt body;
    if (tensorized_init) {
      const TensorIntrinPtr& intrin = loops_[tensorize_pos_].attr->tensor_intrin;
      CHECK(!intrin->reset_name.empty())
          << "tensorized reduction requires a reset intrinsic";
      body = MakeIntrinCall(intrin->reset_name, /*include_inputs=*/false);
    } else {
      body = MakeStore(red->identity, nullptr);
    }
    body = GuardPredicates(std::move(body), /*for_init=*/true);
    for (size_t i = init_loops.size(); i-- > 0;) {
      const LoopSpec* spec = init_loops[i];
      if (spec->emit_loop) {
        body = for_stmt(spec->loop_var, make_int(0), spec->extent, body, spec->for_type,
                        spec->thread_tag);
      }
    }
    return body;
  }

  // Innermost statement: plain store (injective) or reduction update.
  Stmt EmitLeafBody(bool in_update) {
    if (!has_reduce_) {
      return MakeStore(cop_->body[0], nullptr);
    }
    CHECK(in_update);
    const auto* red = static_cast<const ReduceNode*>(cop_->body[0].get());
    Expr out_read = ReadOutput();
    Expr source = FlattenReads(Substitute(red->source, global_map_));
    Expr combined;
    if (red->op == "sum") {
      combined = out_read + source;
    } else if (red->op == "max") {
      combined = max(out_read, source);
    } else if (red->op == "min") {
      combined = min(out_read, source);
    } else {
      LOG(FATAL) << "unknown reducer " << red->op;
    }
    return MakeStore(nullptr, combined);
  }

  Stmt GuardPredicates(Stmt body, bool for_init) {
    std::vector<Expr> preds;
    if (for_init) {
      // Init runs before reduce loops exist; drop predicates that mention them.
      std::unordered_set<const VarNode*> reduce_leafs;
      for (const LoopSpec& spec : loops_) {
        if (spec.iv->type == IterVarType::kCommReduce) {
          reduce_leafs.insert(spec.loop_var.get());
        }
      }
      for (const Expr& p : predicates_) {
        bool uses = false;
        for (const VarNode* v : reduce_leafs) {
          if (UsesVar(p, v)) {
            uses = true;
            break;
          }
        }
        if (!uses) {
          preds.push_back(p);
        }
      }
    } else {
      preds = predicates_;
    }
    if (preds.empty()) {
      return body;
    }
    Expr cond = preds[0];
    for (size_t i = 1; i < preds.size(); ++i) {
      cond = logic_and(cond, preds[i]);
    }
    cond = ctx_->analyzer_.Simplify(cond);
    int64_t cv;
    if (is_const_int(cond, &cv) && cv != 0) {
      return body;
    }
    return if_then_else_stmt(cond, std::move(body));
  }

  struct PendingAlloc {
    Var var;
    DataType dtype;
    std::vector<Expr> extents;
    std::string scope;
  };

  // Generates the nests of children attached at `iv` (this registers their buffers, so it
  // must run before the consuming body is emitted). Allocations are returned separately so
  // the caller can wrap them around producer + consumer.
  std::vector<Stmt> EmitChildren(const IterVar& iv, size_t loop_index, bool* any_shared,
                                 std::vector<PendingAlloc>* allocs) {
    std::vector<Stmt> parts;
    auto it = ctx_->attach_map_.find(stage_.get());
    if (it == ctx_->attach_map_.end()) {
      return parts;
    }
    for (const auto& [attach_iv, child] : it->second) {
      if (attach_iv != iv.get()) {
        continue;
      }
      parts.push_back(MakeAttachedChild(child, loop_index, allocs));
      *any_shared |= child->scope == "shared";
    }
    return parts;
  }

  // Sequences children before the inner content, with barriers around shared-scope
  // producers (Section 4.2).
  static Stmt CombineChildren(std::vector<Stmt> children, bool any_shared, Stmt inner) {
    if (children.empty()) {
      return inner;
    }
    std::vector<Stmt> parts = std::move(children);
    if (any_shared) {
      parts.push_back(MakeSync());
    }
    parts.push_back(std::move(inner));
    if (any_shared) {
      parts.push_back(MakeSync());
    }
    return seq(std::move(parts));
  }

  static Stmt MakeSync() {
    return evaluate(call_intrin(DataType::Int32(), kSyncIntrin,
                                {std::make_shared<StringImmNode>("shared")}));
  }

  // Infers the child's region from this stage's reads below the attach point, registers
  // its buffer, and generates its nest. The allocation is recorded in `allocs`.
  Stmt MakeAttachedChild(const Stage& child, size_t attach_index,
                         std::vector<PendingAlloc>* allocs) {
    DomainMap dom;
    for (size_t i = 0; i < loops_.size(); ++i) {
      const LoopSpec& spec = loops_[i];
      if (i > attach_index) {
        dom[spec.loop_var.get()] = IntSet::FromMinExtent(make_int(0), spec.extent);
      }
    }
    if (child->scope == "shared") {
      // A shared buffer covers the whole thread block: all active thread and vthread
      // indices (possibly bound by ancestor stages) range over their extents.
      for (const auto& [tag, ve] : ctx_->thread_env_) {
        if (tag.rfind("threadIdx", 0) == 0) {
          dom[ve.first.get()] = IntSet::FromMinExtent(make_int(0), make_int(ve.second));
        }
      }
      for (const auto& [var, extent] : ctx_->active_vthreads_) {
        dom[var.get()] = IntSet::FromMinExtent(make_int(0), make_int(extent));
      }
    }
    int child_ndim = static_cast<int>(child->op->output_shape(0).size());
    std::vector<IntSet> region(static_cast<size_t>(child_ndim), IntSet::Everything());
    for (const Expr& body : cop_->body) {
      Expr global_body = Substitute(body, global_map_);
      PostOrderVisit(global_body, [&](const Expr& e) {
        if (e->kind != ExprKind::kTensorRead) {
          return;
        }
        const auto* n = static_cast<const TensorReadNode*>(e.get());
        if (n->op.get() != static_cast<const void*>(child->op.get())) {
          return;
        }
        for (int d = 0; d < child_ndim; ++d) {
          IntSet s = EvalIntSet(n->indices[static_cast<size_t>(d)], dom);
          CHECK(s.defined()) << "cannot bound read of " << child->op->name << " dim " << d;
          region[static_cast<size_t>(d)] = UnionIntSet(region[static_cast<size_t>(d)], s);
        }
      });
    }
    std::vector<Expr> offsets;
    std::vector<int64_t> extents;
    std::vector<int64_t> full = ctx_->FullExtents(child->op);
    for (int d = 0; d < child_ndim; ++d) {
      const IntSet& s = region[static_cast<size_t>(d)];
      Expr extent = s.defined() ? ctx_->analyzer_.Simplify(s.max - s.min + 1) : nullptr;
      int64_t ev;
      if (extent != nullptr && is_const_int(extent, &ev) &&
          ev <= full[static_cast<size_t>(d)]) {
        offsets.push_back(ctx_->analyzer_.Simplify(s.min));
        extents.push_back(ev);
      } else {
        offsets.push_back(make_int(0));
        extents.push_back(full[static_cast<size_t>(d)]);
      }
    }
    ctx_->RegisterInternal(child, extents, offsets);
    Stmt child_nest = ctx_->MakeStageNest(child);
    const BufferInfo& cinfo = ctx_->buffers_.at(child->op.get());
    std::vector<Expr> alloc_extents;
    for (int64_t e : cinfo.extents) {
      alloc_extents.push_back(make_int(e));
    }
    allocs->push_back(
        PendingAlloc{cinfo.var, cinfo.dtype, std::move(alloc_extents), cinfo.scope});
    return child_nest;
  }

  // Store helper: value = body(global coords) or explicit `override_value`.
  Stmt MakeStore(const Expr& body_expr, Expr override_value) {
    const BufferInfo& info = ctx_->buffers_.at(stage_->op.get());
    std::vector<Expr> coords;
    for (const IterVar& iv : cop_->axis) {
      coords.push_back(local_map_.at(iv->var.get()));
    }
    Expr value = std::move(override_value);
    if (value == nullptr) {
      value = FlattenReads(Substitute(body_expr, global_map_));
    }
    Expr index = FlattenIndex(coords, info.extents);
    return store(info.var, ctx_->analyzer_.Simplify(value), ctx_->analyzer_.Simplify(index));
  }

  Expr ReadOutput() {
    const BufferInfo& info = ctx_->buffers_.at(stage_->op.get());
    std::vector<Expr> coords;
    for (const IterVar& iv : cop_->axis) {
      coords.push_back(local_map_.at(iv->var.get()));
    }
    return load(info.dtype, info.var,
                ctx_->analyzer_.Simplify(FlattenIndex(coords, info.extents)));
  }

  // Tensor-intrinsic call. ABI per buffer (output, then inputs in read order):
  // (handle, base_offset, stride per tensorized loop...), then tensorized extents.
  Stmt MakeIntrinCall(const std::string& name, bool include_inputs) {
    const BufferInfo& out_info = ctx_->buffers_.at(stage_->op.get());
    std::vector<const LoopSpec*> tloops;
    for (size_t i = tensorize_pos_; i < loops_.size(); ++i) {
      tloops.push_back(&loops_[i]);
    }
    VarMap zero_map;
    for (const LoopSpec* t : tloops) {
      zero_map[t->loop_var.get()] = make_int(0);
    }
    std::vector<Expr> args;
    auto push_buffer = [&](const Var& buf, const Expr& flat_index) {
      args.push_back(buf);
      args.push_back(ctx_->analyzer_.Simplify(Substitute(flat_index, zero_map)));
      for (const LoopSpec* t : tloops) {
        VarMap one_map = zero_map;
        one_map[t->loop_var.get()] = make_int(1);
        Expr stride = ctx_->analyzer_.Simplify(Substitute(flat_index, one_map) -
                                               Substitute(flat_index, zero_map));
        args.push_back(stride);
      }
    };
    {
      std::vector<Expr> coords;
      for (const IterVar& iv : cop_->axis) {
        coords.push_back(local_map_.at(iv->var.get()));
      }
      push_buffer(out_info.var, FlattenIndex(coords, out_info.extents));
    }
    if (include_inputs) {
      Expr body = cop_->body[0];
      if (body->kind == ExprKind::kReduce) {
        body = static_cast<const ReduceNode*>(body.get())->source;
      }
      body = Substitute(body, global_map_);
      std::vector<std::pair<Var, Expr>> input_bufs;
      std::unordered_set<const void*> seen;
      PostOrderVisit(body, [&](const Expr& e) {
        if (e->kind != ExprKind::kTensorRead) {
          return;
        }
        const auto* r = static_cast<const TensorReadNode*>(e.get());
        if (!seen.insert(r->op.get()).second) {
          return;
        }
        const BufferInfo& info =
            ctx_->buffers_.at(static_cast<const OperationNode*>(r->op.get()));
        std::vector<Expr> coords;
        for (size_t d = 0; d < r->indices.size(); ++d) {
          Expr off = d < info.offsets.size() && info.offsets[d] != nullptr ? info.offsets[d]
                                                                           : make_int(0);
          coords.push_back(Simplify(r->indices[d] - off));
        }
        input_bufs.emplace_back(info.var, FlattenIndex(coords, info.extents));
      });
      for (const auto& [buf, idx] : input_bufs) {
        push_buffer(buf, idx);
      }
    }
    for (const LoopSpec* t : tloops) {
      args.push_back(t->extent);
    }
    return evaluate(call_intrin(DataType::Int32(), name, std::move(args)));
  }

  // Replaces TensorReads with flat Loads through the buffer map.
  Expr FlattenReads(const Expr& e) {
    class Flattener : public ExprMutator {
     public:
      explicit Flattener(LowerContext* ctx) : ctx_(ctx) {}

     protected:
      Expr MutateTensorRead(const TensorReadNode* op, const Expr& e) override {
        Expr base = ExprMutator::MutateTensorRead(op, e);
        const auto* n = static_cast<const TensorReadNode*>(base.get());
        auto it = ctx_->buffers_.find(static_cast<const OperationNode*>(n->op.get()));
        CHECK(it != ctx_->buffers_.end()) << "read of unrealized tensor " << n->name;
        const BufferInfo& info = it->second;
        std::vector<Expr> coords;
        for (size_t d = 0; d < n->indices.size(); ++d) {
          Expr off = d < info.offsets.size() && info.offsets[d] != nullptr ? info.offsets[d]
                                                                           : make_int(0);
          coords.push_back(Simplify(n->indices[d] - off));
        }
        return load(info.dtype, info.var, FlattenIndex(coords, info.extents));
      }

     private:
      LowerContext* ctx_;
    };
    Flattener f(ctx_);
    return ctx_->analyzer_.Simplify(f.Mutate(e));
  }

  LowerContext* ctx_;
  Stage stage_;
  const ComputeOpNode* cop_ = nullptr;
  StageBounds bounds_;
  std::vector<LoopSpec> loops_;
  std::vector<Expr> reuse_predicates_;
  std::vector<Expr> predicates_;
  VarMap local_map_;
  VarMap global_map_;
  bool has_reduce_ = false;
  size_t tensorize_pos_ = 0;
  size_t first_reduce_pos_ = 0;
  std::vector<const VarNode*> bound_vars_;
  std::vector<std::string> registered_tags_;
};

Stmt LowerContext::MakeStageNest(const Stage& stage) {
  StageEmitter emitter(this, stage);
  return emitter.Emit();
}

}  // namespace

LoweredFunc Lower(const Schedule& sch, const std::vector<Tensor>& args,
                  const std::string& name) {
  LowerContext ctx(sch, args, name);
  return ctx.Run();
}

}  // namespace tvmcpp
