// Symbolic interval sets used by bound inference (the paper's Section 4 lowering).
//
// An IntSet is a closed interval [min, max] of integer-valued expressions. Evaluating an
// index expression over a domain map (loop var -> IntSet) yields the region of a tensor
// touched by a consumer, which determines the extents of compute_at-attached stages and
// cache buffers.
#ifndef SRC_LOWER_INTSET_H_
#define SRC_LOWER_INTSET_H_

#include <unordered_map>
#include <vector>

#include "src/ir/expr.h"
#include "src/ir/simplify.h"

namespace tvmcpp {

struct IntSet {
  Expr min;  // inclusive
  Expr max;  // inclusive

  bool defined() const { return min != nullptr && max != nullptr; }
  bool IsPoint() const { return defined() && StructuralEqualExpr(); }

  static IntSet Point(Expr e) { return IntSet{e, e}; }
  static IntSet FromMinExtent(const Expr& min, const Expr& extent) {
    return IntSet{min, Simplify(min + extent - 1)};
  }
  static IntSet Everything() { return IntSet{nullptr, nullptr}; }

 private:
  bool StructuralEqualExpr() const;
};

using DomainMap = std::unordered_map<const VarNode*, IntSet>;

// Evaluates the interval of `e` when each mapped variable ranges over its IntSet;
// unmapped variables are treated as symbolic points.
IntSet EvalIntSet(const Expr& e, const DomainMap& dom);

// Union of two intervals.
IntSet UnionIntSet(const IntSet& a, const IntSet& b);

}  // namespace tvmcpp

#endif  // SRC_LOWER_INTSET_H_
