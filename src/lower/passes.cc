// Post-lowering passes: virtual-thread injection (Figure 8), shared-allocation
// hoisting, and thread-block serialization. Loop unrolling and the loop
// specialization pipeline live in src/lower/unroll.cc.
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ir/functor.h"
#include "src/ir/simplify.h"
#include "src/ir/substitute.h"
#include "src/lower/lower.h"

namespace tvmcpp {

namespace {

// (Loop unrolling lives in src/lower/unroll.cc with the rest of the loop
// specialization machinery.)

// Adds `vt * chunk` to every access of `buffer` (used when a per-vthread buffer is
// expanded to hold all vthread copies).
class BufferOffsetter : public StmtMutator {
 public:
  BufferOffsetter(const VarNode* buffer, Expr offset)
      : buffer_(buffer), offset_(std::move(offset)) {}

 protected:
  Expr MutateLoad(const LoadNode* op, const Expr& e) override {
    Expr base = ExprMutator::MutateLoad(op, e);
    const auto* n = static_cast<const LoadNode*>(base.get());
    if (n->buffer_var.get() != buffer_) {
      return base;
    }
    return load(n->dtype, n->buffer_var, Simplify(n->index + offset_), n->predicate);
  }

  Stmt MutateStore(const StoreNode* op, const Stmt& s) override {
    Stmt base = StmtMutator::MutateStore(op, s);
    const auto* n = static_cast<const StoreNode*>(base.get());
    if (n->buffer_var.get() != buffer_) {
      return base;
    }
    return store(n->buffer_var, n->value, Simplify(n->index + offset_), n->predicate);
  }

  // Intrinsic calls address buffers as (handle, offset, ...); shift the offset argument
  // that follows the buffer handle.
  Expr MutateCall(const CallNode* op, const Expr& e) override {
    Expr base = ExprMutator::MutateCall(op, e);
    const auto* n = static_cast<const CallNode*>(base.get());
    if (n->call_type != CallType::kIntrinsic) {
      return base;
    }
    bool changed = false;
    std::vector<Expr> args = n->args;
    for (size_t i = 0; i + 1 < args.size(); ++i) {
      if (args[i]->kind == ExprKind::kVar &&
          static_cast<const VarNode*>(args[i].get()) == buffer_) {
        args[i + 1] = Simplify(args[i + 1] + offset_);
        changed = true;
      }
    }
    if (!changed) {
      return base;
    }
    return call_intrin(n->dtype, n->name, std::move(args));
  }

 private:
  const VarNode* buffer_;
  Expr offset_;
};

// Collects allocations directly inside a vthread body and strips them (they are re-created
// expanded by the injector).
class AllocStripper : public StmtMutator {
 public:
  struct Alloc {
    Var var;
    DataType dtype;
    int64_t size = 1;
    std::string scope;
  };

  std::vector<Alloc> allocs;

 protected:
  Stmt MutateAllocate(const AllocateNode* op, const Stmt& s) override {
    Alloc a;
    a.var = op->buffer_var;
    a.dtype = op->dtype;
    a.scope = op->scope;
    for (const Expr& e : op->extents) {
      a.size *= get_const_int(Simplify(e));
    }
    allocs.push_back(a);
    return MutateStmt(op->body);
  }
};

// Interleaves the per-vthread copies of a statement at Seq granularity, recursing into
// serial loops so the interleave happens inside them (Figure 8's final stream).
class VThreadInjector : public StmtMutator {
 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    if (op->for_type != ForType::kVThread) {
      return StmtMutator::MutateFor(op, s);
    }
    int64_t n = get_const_int(op->extent);
    // Recursively lower nested vthreads first.
    Stmt body = MutateStmt(op->body);
    // Hoist and expand per-vthread allocations.
    AllocStripper stripper;
    body = stripper.MutateStmt(body);
    for (const AllocStripper::Alloc& a : stripper.allocs) {
      BufferOffsetter off(a.var.get(), op->loop_var * make_int(a.size));
      body = off.MutateStmt(body);
    }
    Stmt interleaved = Interleave(body, op->loop_var, n);
    for (auto it = stripper.allocs.rbegin(); it != stripper.allocs.rend(); ++it) {
      interleaved = allocate(it->var, it->dtype, {make_int(it->size * n)}, it->scope,
                             interleaved);
    }
    return interleaved;
  }

 private:
  static Stmt Duplicate(const Stmt& s, const Var& vt, int64_t n) {
    std::vector<Stmt> copies;
    copies.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      VarMap vmap{{vt.get(), make_int(i)}};
      copies.push_back(Simplify(Substitute(s, vmap)));
    }
    return seq(std::move(copies));
  }

  // Number of primitive operations (stores / tensor-intrinsic calls) in a subtree.
  // Loop nests containing a single operation are "macro instructions" (a DMA copy, a
  // GEMM block): the interleaver duplicates them atomically rather than descending,
  // matching Figure 8's instruction-level interleaving granularity.
  static int CountOps(const Stmt& s) {
    int ops = 0;
    PostOrderVisitStmt(s, [&](const Stmt& st) {
      if (st->kind == StmtKind::kStore) {
        ++ops;
      } else if (st->kind == StmtKind::kEvaluate) {
        const Expr& e = static_cast<const EvaluateNode*>(st.get())->value;
        if (e->kind == ExprKind::kCall) {
          const auto* c = static_cast<const CallNode*>(e.get());
          if (c->call_type == CallType::kIntrinsic && c->name != kSyncIntrin) {
            ++ops;
          }
        }
      }
    });
    return ops;
  }

  static Stmt Interleave(const Stmt& s, const Var& vt, int64_t n) {
    if (s == nullptr) {
      return s;
    }
    if (s->kind == StmtKind::kFor && CountOps(s) <= 1) {
      return Duplicate(s, vt, n);
    }
    switch (s->kind) {
      case StmtKind::kSeq: {
        const auto* sn = static_cast<const SeqStmtNode*>(s.get());
        std::vector<Stmt> out;
        for (const Stmt& elem : sn->seq) {
          out.push_back(Interleave(elem, vt, n));
        }
        return seq(std::move(out));
      }
      case StmtKind::kFor: {
        const auto* fn = static_cast<const ForNode*>(s.get());
        if (fn->for_type == ForType::kSerial && !UsesVar(fn->extent, vt.get()) &&
            !UsesVar(fn->min, vt.get())) {
          // Interleave inside the loop so vthread copies alternate every iteration.
          Stmt body = Interleave(fn->body, vt, n);
          return for_stmt(fn->loop_var, fn->min, fn->extent, body, fn->for_type,
                          fn->thread_tag);
        }
        return Duplicate(s, vt, n);
      }
      case StmtKind::kAllocate: {
        const auto* an = static_cast<const AllocateNode*>(s.get());
        // Non-hoisted allocation (created deeper): keep structure, interleave body.
        Stmt body = Interleave(an->body, vt, n);
        return allocate(an->buffer_var, an->dtype, an->extents, an->scope, body);
      }
      case StmtKind::kAttrStmt: {
        const auto* an = static_cast<const AttrStmtNode*>(s.get());
        return attr_stmt(an->key, an->value, Interleave(an->body, vt, n));
      }
      default:
        return Duplicate(s, vt, n);
    }
  }
};

}  // namespace

namespace {

// Strips Allocates with the given scope, recording them.
class ScopedAllocHoister : public StmtMutator {
 public:
  struct Alloc {
    Var var;
    DataType dtype;
    std::vector<Expr> extents;
    std::string scope;
  };
  std::vector<Alloc> hoisted;

 protected:
  Stmt MutateAllocate(const AllocateNode* op, const Stmt& s) override {
    if (op->scope != "shared") {
      return StmtMutator::MutateAllocate(op, s);
    }
    // Shared extents are constant by construction; hoisting only extends lifetime.
    hoisted.push_back(Alloc{op->buffer_var, op->dtype, op->extents, op->scope});
    return MutateStmt(op->body);
  }
};

}  // namespace

Stmt HoistSharedAllocations(const Stmt& s) {
  ScopedAllocHoister hoister;
  Stmt body = hoister.MutateStmt(s);
  for (auto it = hoister.hoisted.rbegin(); it != hoister.hoisted.rend(); ++it) {
    body = allocate(it->var, it->dtype, it->extents, it->scope, body);
  }
  return body;
}

Stmt InjectVirtualThreads(const Stmt& s) {
  VThreadInjector inj;
  return inj.MutateStmt(s);
}

namespace {

bool IsSyncStmt(const Stmt& s) {
  if (s == nullptr || s->kind != StmtKind::kEvaluate) {
    return false;
  }
  const Expr& e = static_cast<const EvaluateNode*>(s.get())->value;
  return e->kind == ExprKind::kCall &&
         static_cast<const CallNode*>(e.get())->name == kSyncIntrin;
}

bool ContainsSync(const Stmt& s) {
  bool found = false;
  PostOrderVisitStmt(s, [&](const Stmt& st) { found |= IsSyncStmt(st); });
  return found;
}

struct ThreadLoop {
  Var var;
  int64_t extent;
};

// Removes threadIdx-bound For loops from a subtree, collecting them outer-to-inner.
class ThreadLoopStripper : public StmtMutator {
 public:
  std::vector<ThreadLoop> threads;

 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    if (op->for_type == ForType::kThreadBinding &&
        op->thread_tag.rfind("threadIdx", 0) == 0) {
      threads.push_back(ThreadLoop{op->loop_var, get_const_int(op->extent)});
      return MutateStmt(op->body);
    }
    return StmtMutator::MutateFor(op, s);
  }
};

// Collects and strips non-shared allocations inside a thread region (for privatization).
class PrivateAllocStripper : public StmtMutator {
 public:
  struct Alloc {
    Var var;
    DataType dtype;
    int64_t size;
    std::string scope;
  };
  std::vector<Alloc> allocs;

 protected:
  Stmt MutateAllocate(const AllocateNode* op, const Stmt& s) override {
    int64_t size = 1;
    for (const Expr& e : op->extents) {
      size *= get_const_int(Simplify(e));
    }
    allocs.push_back(Alloc{op->buffer_var, op->dtype, size, op->scope});
    return MutateStmt(op->body);
  }
};

class BlockSerializer : public StmtMutator {
 protected:
  Stmt MutateFor(const ForNode* op, const Stmt& s) override {
    if (!(op->for_type == ForType::kThreadBinding &&
          op->thread_tag.rfind("threadIdx", 0) == 0)) {
      return StmtMutator::MutateFor(op, s);
    }
    // Found the outermost thread loop of a kernel region.
    ThreadLoopStripper stripper;
    stripper.threads.push_back(ThreadLoop{op->loop_var, get_const_int(op->extent)});
    Stmt body = stripper.MutateStmt(op->body);
    const std::vector<ThreadLoop>& threads = stripper.threads;

    // Privatize per-thread buffers: expand by the grid size, offset by the linear tid.
    PrivateAllocStripper allocs;
    body = allocs.MutateStmt(body);
    int64_t grid = 1;
    for (const ThreadLoop& t : threads) {
      grid *= t.extent;
    }
    Expr tid = make_int(0);
    for (const ThreadLoop& t : threads) {
      tid = tid * make_int(t.extent) + t.var;
    }
    for (const PrivateAllocStripper::Alloc& a : allocs.allocs) {
      BufferOffsetter off(a.var.get(), Simplify(tid * make_int(a.size)));
      body = off.MutateStmt(body);
    }

    // Fission at barriers: thread loops wrap each sync-free phase.
    Stmt result = Fission(body, threads);
    for (auto it = allocs.allocs.rbegin(); it != allocs.allocs.rend(); ++it) {
      result = allocate(it->var, it->dtype, {make_int(it->size * grid)}, it->scope, result);
    }
    return result;
  }

 private:
  static Stmt WrapThreads(Stmt body, const std::vector<ThreadLoop>& threads) {
    for (auto it = threads.rbegin(); it != threads.rend(); ++it) {
      body = for_stmt(it->var, make_int(0), make_int(it->extent), std::move(body),
                      ForType::kSerial);
    }
    return body;
  }

  static Stmt Fission(const Stmt& s, const std::vector<ThreadLoop>& threads) {
    if (!ContainsSync(s)) {
      return WrapThreads(s, threads);
    }
    switch (s->kind) {
      case StmtKind::kSeq: {
        const auto* n = static_cast<const SeqStmtNode*>(s.get());
        std::vector<Stmt> out;
        std::vector<Stmt> pending;  // consecutive sync-free statements
        auto flush = [&]() {
          if (!pending.empty()) {
            out.push_back(WrapThreads(seq(std::move(pending)), threads));
            pending.clear();
          }
        };
        for (const Stmt& elem : n->seq) {
          if (IsSyncStmt(elem)) {
            flush();  // the barrier itself becomes the phase boundary
          } else if (ContainsSync(elem)) {
            flush();
            out.push_back(Fission(elem, threads));
          } else {
            pending.push_back(elem);
          }
        }
        flush();
        return seq(std::move(out));
      }
      case StmtKind::kFor: {
        const auto* n = static_cast<const ForNode*>(s.get());
        CHECK(n->for_type == ForType::kSerial || n->for_type == ForType::kUnrolled ||
              n->for_type == ForType::kVThread)
            << "barrier under unsupported loop type";
        return for_stmt(n->loop_var, n->min, n->extent, Fission(n->body, threads),
                        n->for_type, n->thread_tag);
      }
      case StmtKind::kAllocate: {
        const auto* n = static_cast<const AllocateNode*>(s.get());
        return allocate(n->buffer_var, n->dtype, n->extents, n->scope,
                        Fission(n->body, threads));
      }
      case StmtKind::kAttrStmt: {
        const auto* n = static_cast<const AttrStmtNode*>(s.get());
        return attr_stmt(n->key, n->value, Fission(n->body, threads));
      }
      case StmtKind::kEvaluate:
        if (IsSyncStmt(s)) {
          return nop();
        }
        return WrapThreads(s, threads);
      default:
        LOG(FATAL) << "barrier under unsupported statement kind";
    }
  }
};

}  // namespace

Stmt SerializeThreadBlocks(const Stmt& s) {
  BlockSerializer ser;
  return ser.MutateStmt(s);
}

bool HasThreadIdxBinding(const Stmt& s) {
  bool found = false;
  PostOrderVisitStmt(s, [&](const Stmt& st) {
    if (st->kind == StmtKind::kFor) {
      const auto* n = static_cast<const ForNode*>(st.get());
      found |= n->for_type == ForType::kThreadBinding &&
               n->thread_tag.rfind("threadIdx", 0) == 0;
    }
  });
  return found;
}

}  // namespace tvmcpp
