#include "src/lower/intset.h"

#include <utility>

#include "src/ir/substitute.h"

namespace tvmcpp {

bool IntSet::StructuralEqualExpr() const { return StructuralEqual(min, max); }

namespace {

IntSet Combine(ExprKind kind, const IntSet& a, const IntSet& b) {
  if (!a.defined() || !b.defined()) {
    return IntSet::Everything();
  }
  switch (kind) {
    case ExprKind::kAdd:
      return IntSet{Simplify(a.min + b.min), Simplify(a.max + b.max)};
    case ExprKind::kSub:
      return IntSet{Simplify(a.min - b.max), Simplify(a.max - b.min)};
    case ExprKind::kMul: {
      // Scale by a constant point; the general case falls back to Everything.
      int64_t c;
      const IntSet* range = &a;
      const IntSet* scale = &b;
      if (!(scale->IsPoint() && is_const_int(scale->min, &c))) {
        range = &b;
        scale = &a;
      }
      if (scale->IsPoint() && is_const_int(scale->min, &c)) {
        if (c >= 0) {
          return IntSet{Simplify(range->min * c), Simplify(range->max * c)};
        }
        return IntSet{Simplify(range->max * c), Simplify(range->min * c)};
      }
      if (a.IsPoint() && b.IsPoint()) {
        return IntSet::Point(Simplify(a.min * b.min));
      }
      return IntSet::Everything();
    }
    case ExprKind::kDiv: {
      int64_t c;
      if (b.IsPoint() && is_const_int(b.min, &c) && c > 0) {
        return IntSet{Simplify(a.min / c), Simplify(a.max / c)};
      }
      return IntSet::Everything();
    }
    case ExprKind::kMod: {
      int64_t c;
      if (b.IsPoint() && is_const_int(b.min, &c) && c > 0) {
        if (a.IsPoint()) {
          return IntSet::Point(Simplify(a.min % c));
        }
        // If the whole range fits in one modulo period, keep it; otherwise [0, c-1].
        Expr span = Simplify(a.max - a.min);
        int64_t span_v;
        if (is_const_int(span, &span_v) && span_v < c) {
          Expr lo = Simplify(a.min % c);
          Expr hi = Simplify(a.max % c);
          // Only exact when the range does not wrap; be conservative otherwise.
          Analyzer ana;
          if (ana.CanProve(le(lo, hi))) {
            return IntSet{lo, hi};
          }
        }
        return IntSet{make_int(0), make_int(c - 1)};
      }
      return IntSet::Everything();
    }
    case ExprKind::kMin:
      return IntSet{Simplify(min(a.min, b.min)), Simplify(min(a.max, b.max))};
    case ExprKind::kMax:
      return IntSet{Simplify(max(a.min, b.min)), Simplify(max(a.max, b.max))};
    default:
      return IntSet::Everything();
  }
}

}  // namespace

IntSet UnionIntSet(const IntSet& a, const IntSet& b) {
  if (!a.defined()) {
    return b;
  }
  if (!b.defined()) {
    return a;
  }
  return IntSet{Simplify(min(a.min, b.min)), Simplify(max(a.max, b.max))};
}

IntSet EvalIntSet(const Expr& e, const DomainMap& dom) {
  if (e == nullptr) {
    return IntSet::Everything();
  }
  switch (e->kind) {
    case ExprKind::kIntImm:
      return IntSet::Point(e);
    case ExprKind::kVar: {
      auto it = dom.find(static_cast<const VarNode*>(e.get()));
      if (it != dom.end()) {
        return it->second;
      }
      return IntSet::Point(e);  // free symbol: treated as a fixed point
    }
    case ExprKind::kCast: {
      const auto* n = static_cast<const CastNode*>(e.get());
      return EvalIntSet(n->value, dom);
    }
    case ExprKind::kSelect: {
      const auto* n = static_cast<const SelectNode*>(e.get());
      return UnionIntSet(EvalIntSet(n->true_value, dom), EvalIntSet(n->false_value, dom));
    }
    case ExprKind::kCall: {
      const auto* n = static_cast<const CallNode*>(e.get());
      if (n->name == "if_then_else" && n->args.size() == 3) {
        return UnionIntSet(EvalIntSet(n->args[1], dom), EvalIntSet(n->args[2], dom));
      }
      return IntSet::Everything();
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul:
    case ExprKind::kDiv:
    case ExprKind::kMod:
    case ExprKind::kMin:
    case ExprKind::kMax: {
      const auto* n = static_cast<const BinaryNode*>(e.get());
      return Combine(e->kind, EvalIntSet(n->a, dom), EvalIntSet(n->b, dom));
    }
    default:
      return IntSet::Everything();
  }
}

}  // namespace tvmcpp
