#include "src/autotune/feature.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/ir/simplify.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace autotune {

namespace {

double Log2p1(double x) { return std::log2(1.0 + std::max(0.0, x)); }

}  // namespace

std::vector<double> ExtractFeatures(const ProgramStats& stats) {
  std::vector<double> f;
  f.reserve(kFeatureDim);
  // Arithmetic.
  f.push_back(Log2p1(stats.flops));
  f.push_back(Log2p1(stats.int_ops));
  f.push_back(Log2p1(stats.special_ops));
  f.push_back(Log2p1(static_cast<double>(stats.total_loads)));
  f.push_back(Log2p1(static_cast<double>(stats.total_stores)));
  f.push_back(Log2p1(static_cast<double>(stats.loop_iterations)));
  f.push_back(Log2p1(static_cast<double>(stats.sync_count)));
  f.push_back(Log2p1(static_cast<double>(stats.branch_count)));
  // Thread structure.
  f.push_back(Log2p1(static_cast<double>(stats.grid_threads)));
  f.push_back(Log2p1(static_cast<double>(stats.block_threads)));
  f.push_back(Log2p1(static_cast<double>(stats.virtual_threads)));
  // Annotation one-hots.
  f.push_back(stats.has_vectorized ? 1.0 : 0.0);
  f.push_back(stats.has_parallel ? 1.0 : 0.0);
  f.push_back(stats.has_unrolled ? 1.0 : 0.0);
  f.push_back(Log2p1(static_cast<double>(stats.vector_extent)));
  f.push_back(Log2p1(static_cast<double>(stats.parallel_extent)));
  // Allocation bytes by scope.
  double shared = 0, local = 0, global_alloc = 0;
  for (const auto& [scope, bytes] : stats.alloc_bytes_by_scope) {
    if (scope == "shared") {
      shared += static_cast<double>(bytes);
    } else if (scope == "local") {
      local += static_cast<double>(bytes);
    } else {
      global_alloc += static_cast<double>(bytes);
    }
  }
  f.push_back(Log2p1(shared));
  f.push_back(Log2p1(local));
  f.push_back(Log2p1(global_alloc));
  // Per-buffer touch statistics (top 4 buffers by access volume): access count, unique
  // bytes, reuse ratio, innermost stride class, thread stride class.
  std::vector<const BufferStats*> bufs;
  for (const BufferStats& b : stats.buffers) {
    bufs.push_back(&b);
  }
  std::sort(bufs.begin(), bufs.end(), [](const BufferStats* a, const BufferStats* b) {
    return a->loads + a->stores > b->loads + b->stores;
  });
  for (int i = 0; i < 4; ++i) {
    if (i < static_cast<int>(bufs.size())) {
      const BufferStats* b = bufs[static_cast<size_t>(i)];
      double accesses = static_cast<double>(b->loads + b->stores);
      double unique = static_cast<double>(std::max<int64_t>(b->unique_elements, 1));
      f.push_back(Log2p1(accesses));
      f.push_back(Log2p1(unique));
      f.push_back(Log2p1(accesses / unique));  // reuse ratio
      f.push_back(b->innermost_stride == 0   ? 0.0
                  : b->innermost_stride == 1 ? 1.0
                                             : 2.0);
      f.push_back(b->thread_stride == 0 ? 0.0 : b->thread_stride == 1 ? 1.0 : 2.0);
    } else {
      for (int j = 0; j < 5; ++j) {
        f.push_back(0.0);
      }
    }
  }
  // Loop-level touched-bytes profile (first 9 loops, innermost last): extent + total
  // touched elements per iteration (the Figure 13 table, flattened).
  size_t emitted = 0;
  for (size_t i = 0; i < stats.loops.size() && emitted < 9; ++i, ++emitted) {
    const LoopStats& ls = stats.loops[i];
    double touched = 0;
    for (const LoopBufferTouch& t : ls.touches) {
      touched += static_cast<double>(t.elements_per_iteration);
    }
    f.push_back(Log2p1(static_cast<double>(ls.extent)) + Log2p1(touched) * 0.1);
  }
  while (f.size() < kFeatureDim) {
    f.push_back(0.0);
  }
  f.resize(kFeatureDim);
  return f;
}

std::vector<double> ExtractFeatures(const LoweredFunc& func) {
  return ExtractFeatures(AnalyzeProgram(func));
}

std::vector<double> ExtractFeaturesVm(const LoweredFunc& func,
                                      const LoopSpecializeOptions& spec) {
  // Mirror the vm::CompileToProgram lowering pipeline so the classic block
  // describes the loop nest that actually executes, not the pre-VM one.
  Stmt body = func.body;
  if (HasThreadIdxBinding(body)) {
    body = SerializeThreadBlocks(body);
  }
  body = VectorizeLoop(body);
  if (spec.unroll_limit > 0 || spec.hoist_invariants) {
    body = SpecializeLoops(body, spec);
  }
  body = Simplify(body);
  LoweredFunc specialized{func.name, func.args, body};
  std::vector<double> f = ExtractFeatures(AnalyzeProgram(specialized));
  f.resize(static_cast<size_t>(kFullFeatureDim), 0.0);

  std::shared_ptr<const vm::Program> program = vm::CompileToProgram(func, spec);
  if (program == nullptr) {
    return f;  // VM block zeroed; feature [kFeatureDim] doubles as the flag
  }
  vm::ProgramStats ps = vm::GetProgramStats(*program);
  size_t i = static_cast<size_t>(kFeatureDim);
  f[i++] = 1.0;  // compiled-to-bytecode flag
  f[i++] = Log2p1(static_cast<double>(ps.num_instructions));
  f[i++] = Log2p1(static_cast<double>(ps.num_registers));
  f[i++] = Log2p1(static_cast<double>(ps.jumps));
  f[i++] = Log2p1(static_cast<double>(ps.int_muls));
  f[i++] = Log2p1(static_cast<double>(ps.movs));
  f[i++] = Log2p1(static_cast<double>(ps.loads));
  f[i++] = Log2p1(static_cast<double>(ps.stores));
  f[i++] = Log2p1(static_cast<double>(ps.unrolled_loops));
  f[i++] = Log2p1(static_cast<double>(ps.hoisted_lets));
  f[i++] = Log2p1(static_cast<double>(ps.csed_muls));
  f[i++] = Log2p1(static_cast<double>(ps.strength_reduced));
  f[i++] = Log2p1(static_cast<double>(ps.peephole_removed));
  f[i++] = vm::ProgramHasParallel(*program) ? 1.0 : 0.0;
  f[i++] = vm::ProgramHasVector(*program) ? 1.0 : 0.0;
  // Branch density: straight-line (unrolled) code scores near zero.
  f[i++] = static_cast<double>(ps.jumps) /
           static_cast<double>(std::max(ps.num_instructions, 1));
  return f;
}

}  // namespace autotune
}  // namespace tvmcpp
