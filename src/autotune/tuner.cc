#include "src/autotune/tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>

#include "src/autotune/feature.h"
#include "src/lower/lower.h"
#include "src/runtime/threadpool.h"
#include "src/sim/machine.h"
#include "src/support/random.h"
#include "src/vm/vm.h"

namespace tvmcpp {
namespace autotune {

namespace {

int EnvIntOr(const char* name, int fallback, int min_value) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') {
    return fallback;
  }
  return std::max(min_value, std::atoi(s));
}

}  // namespace

MeasureOptions MeasureOptions::FromEnv(const Target& target) {
  MeasureOptions m;
  const char* sim = std::getenv("TVMCPP_TUNE_SIM");
  bool force_sim = sim != nullptr && std::string(sim) == "1";
  // Only CPU-target programs execute natively on this host; GPU/accelerator
  // codegen runs serialized (SerializeThreadBlocks), so wall-clock there would
  // rank configs by an irrelevant machine. Those targets keep the sim model.
  m.use_sim = force_sim || target.kind != TargetKind::kCpu;
  m.warmup = EnvIntOr("TVMCPP_TUNE_WARMUP", m.warmup, 0);
  m.repeats = EnvIntOr("TVMCPP_TUNE_REPEATS", m.repeats, 1);
  return m;
}

TuningTask::TuningTask(topi::OpWorkload wl, Target target, uint64_t seed,
                       double noise_level)
    : TuningTask(wl, target, MeasureOptions::FromEnv(target), seed, noise_level) {}

TuningTask::TuningTask(topi::OpWorkload wl, Target target, MeasureOptions measure,
                       uint64_t seed, double noise_level)
    : wl_(std::move(wl)),
      target_(std::move(target)),
      measure_(measure),
      seed_(seed),
      noise_level_(noise_level) {
  space_ = topi::GetScheduleSpace(wl_, target_);
}

std::string TuningTask::CacheKey() const {
  return TuningKey(wl_, target_, measure_.specialize);
}

LoweredFunc TuningTask::LowerConfig(int64_t index) const {
  topi::Config config = space_.At(index);
  topi::BuiltOp built = topi::BuildOpCompute(wl_);
  Schedule s = topi::ApplyOpSchedule(wl_, target_, built, config);
  return Lower(s, built.Args(), wl_.Key());
}

void TuningTask::EnsureArgBuffers(const LoweredFunc& func) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!arg_bindings_.empty()) {
    return;
  }
  // Every config lowers the same extern buffer signature (BuildOpCompute's
  // placeholders + output, in Lower() argument order), so one set of buffers
  // serves all trials. Inputs are deterministic per task seed: trials rank
  // configs on identical data.
  //
  // sparse_dense measurement buffers: random values are fine for x/w_data, but
  // w_indices and w_indptr drive address computation inside the kernel, so they
  // must describe a real CSR matrix (monotone indptr summing to nnz, ascending
  // in-bounds columns) or the measured kernel would gather out of bounds. A
  // deterministic valid structure matching the workload's (oc, k, nnz,
  // max_row_nnz) stands in for real pruned weights; args arrive in
  // BuildOpCompute order [x, w_data, w_indices, w_indptr, out].
  bool sparse = wl_.kind == "sparse_dense";
  for (size_t i = 0; i < func.args.size(); ++i) {
    const BufferArg& arg = func.args[i];
    NDArray nd = (i + 1 == func.args.size())
                     ? NDArray::Empty(arg.shape, arg.dtype)
                     : NDArray::Random(arg.shape, arg.dtype, seed_ * 7919 + i);
    if (sparse && (i == 2 || i == 3)) {
      nd = NDArray::Empty(arg.shape, arg.dtype);
      int32_t* p = nd.Data<int32_t>();
      // Spread nnz as evenly as rows allow, capped by the declared ELL bound.
      int64_t oc = wl_.oc, remaining = wl_.nnz, at = 0;
      for (int64_t r = 0; r < oc; ++r) {
        int64_t want = (wl_.nnz + oc - 1) / oc;
        int64_t len = std::min({want, remaining, wl_.max_row_nnz,
                                static_cast<int64_t>(wl_.k)});
        if (i == 2) {  // w_indices: the first `len` columns, ascending
          for (int64_t c = 0; c < len; ++c) {
            p[at + c] = static_cast<int32_t>(c);
          }
        } else {  // w_indptr
          p[r] = static_cast<int32_t>(at);
        }
        at += len;
        remaining -= len;
      }
      if (i == 3) {
        p[oc] = static_cast<int32_t>(at);
      }
    }
    arg_arrays_.push_back(nd);
    arg_bindings_.push_back(nd.Binding());
  }
}

double TuningTask::MeasureReal(int64_t index) {
  LoweredFunc func = LowerConfig(index);
  std::shared_ptr<const vm::Program> program =
      vm::CompileToProgram(func, measure_.specialize);
  EnsureArgBuffers(func);
  auto run_once = [&] {
    if (program != nullptr) {
      vm::Run(*program, arg_bindings_, {});
    } else {
      // Deliberate engine choice for a VM-unsupported construct, not a silent
      // downgrade: time what compilation would actually run.
      RunLoweredInterp(func, arg_bindings_);
    }
  };
  // Timed section: serialized across threads so parallel MeasureBatch callers
  // (which overlap the lower/compile above) cannot distort each other's clocks.
  std::lock_guard<std::mutex> timing(time_mu_);
  for (int i = 0; i < measure_.warmup; ++i) {
    run_once();
  }
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < std::max(1, measure_.repeats); ++i) {
    auto t0 = std::chrono::steady_clock::now();
    run_once();
    double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
    best = std::min(best, s);
  }
  return best;
}

double TuningTask::CostOf(int64_t index, bool with_noise) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cost_cache_.find(index);
    if (it != cost_cache_.end()) {
      double base = it->second;
      if (!with_noise) {
        return base;
      }
      Rng rng(seed_ * 1000003 + static_cast<uint64_t>(index));
      return base * (1.0 + noise_level_ * rng.Normal());
    }
  }
  double seconds;
  std::vector<double> features;
  try {
    LoweredFunc f = LowerConfig(index);
    ProgramStats stats = AnalyzeProgram(f);
    SimCost cost = target_.kind == TargetKind::kGpu ? EstimateGpuCost(target_, stats)
                                                    : EstimateCpuCost(target_, stats);
    seconds = cost.feasible ? cost.seconds : 1.0;
    features = ExtractFeatures(stats);
    features.resize(static_cast<size_t>(kFullFeatureDim), 0.0);
  } catch (const InternalError&) {
    seconds = 1.0;  // invalid schedule: huge penalty, like a failed on-device run
    features.assign(static_cast<size_t>(kFullFeatureDim), 0.0);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    cost_cache_[index] = seconds;
    feature_cache_[index] = std::move(features);
  }
  if (!with_noise) {
    return seconds;
  }
  Rng rng(seed_ * 1000003 + static_cast<uint64_t>(index));
  return seconds * (1.0 + noise_level_ * rng.Normal());
}

double TuningTask::Measure(int64_t index) {
  if (measure_.use_sim) {
    return CostOf(index, true);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cost_cache_.find(index);
    if (it != cost_cache_.end()) {
      return it->second;
    }
  }
  double seconds;
  try {
    seconds = MeasureReal(index);
  } catch (const InternalError&) {
    seconds = 1.0;  // invalid schedule: huge penalty
  }
  std::lock_guard<std::mutex> lock(mu_);
  return cost_cache_.emplace(index, seconds).first->second;  // first write wins
}

double TuningTask::TrueCost(int64_t index) {
  return measure_.use_sim ? CostOf(index, false) : Measure(index);
}

std::vector<double> TuningTask::Features(int64_t index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = feature_cache_.find(index);
    if (it != feature_cache_.end()) {
      return it->second;
    }
  }
  if (measure_.use_sim) {
    CostOf(index, false);  // sim cost + features come from one lowering
    std::lock_guard<std::mutex> lock(mu_);
    return feature_cache_.at(index);
  }
  std::vector<double> features;
  try {
    features = ExtractFeaturesVm(LowerConfig(index), measure_.specialize);
  } catch (const InternalError&) {
    features.assign(static_cast<size_t>(kFullFeatureDim), 0.0);
  }
  std::lock_guard<std::mutex> lock(mu_);
  return feature_cache_.emplace(index, std::move(features)).first->second;
}

namespace {

// Measures a batch, appending to the history: via the simulated device pool
// when provided, else concurrently on the worker pool (lower/compile overlap;
// real-mode timed sections serialize inside the task), else sequentially.
std::vector<double> MeasureBatch(TuningTask* task, const std::vector<int64_t>& batch,
                                 const TuneOptions& options) {
  std::vector<double> out(batch.size());
  if (options.pool != nullptr) {
    std::vector<MeasureRequest> reqs(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      reqs[i].func_name = task->workload().Key();
      reqs[i].payload = &batch[i];
    }
    std::vector<MeasureResult> results =
        options.pool->MeasureBatch(reqs, task->target().name);
    for (size_t i = 0; i < batch.size(); ++i) {
      out[i] = results[i].ok ? results[i].seconds : 1.0;
    }
    return out;
  }
  if (options.workers != nullptr && batch.size() > 1) {
    std::vector<std::future<double>> futures;
    futures.reserve(batch.size());
    for (int64_t idx : batch) {
      futures.push_back(options.workers->Submit([task, idx] { return task->Measure(idx); }));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      out[i] = futures[i].get();
    }
    return out;
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    out[i] = task->Measure(batch[i]);
  }
  return out;
}

// Mutates one knob of a config index by a random step (the SA neighborhood).
int64_t Neighbor(const topi::ConfigSpace& space, int64_t index, Rng* rng) {
  topi::Config c = space.At(index);
  const topi::KnobSpec& knob =
      space.knobs[rng->Uniform(static_cast<uint64_t>(space.knobs.size()))];
  // Move to an adjacent choice.
  int64_t cur = c[knob.name];
  size_t pos = 0;
  for (size_t i = 0; i < knob.choices.size(); ++i) {
    if (knob.choices[i] == cur) {
      pos = i;
      break;
    }
  }
  if (knob.choices.size() > 1) {
    size_t next = rng->Uniform(2) == 0
                      ? (pos == 0 ? 1 : pos - 1)
                      : (pos + 1 >= knob.choices.size() ? pos - 1 : pos + 1);
    c[knob.name] = knob.choices[next];
  }
  return space.IndexOf(c);
}

// Parallel simulated annealing over the model's predicted score; returns up to `want`
// distinct promising unvisited configs (Section 5.3).
std::vector<int64_t> ExploreWithModel(TuningTask* task, const GbtModel& model,
                                      std::vector<int64_t>* sa_state, int want, int steps,
                                      const std::unordered_set<int64_t>& visited, Rng* rng) {
  const topi::ConfigSpace& space = task->space();
  auto score = [&](int64_t idx) { return model.Predict(task->Features(idx)); };
  std::vector<double> cur_score(sa_state->size());
  for (size_t i = 0; i < sa_state->size(); ++i) {
    cur_score[i] = score((*sa_state)[i]);
  }
  // Track the best-scored configs seen during the walk.
  std::set<std::pair<double, int64_t>> heap;  // (score, index), ascending
  auto offer = [&](double sc, int64_t idx) {
    if (visited.count(idx)) {
      return;
    }
    heap.insert({sc, idx});
    while (static_cast<int>(heap.size()) > want * 3) {
      heap.erase(heap.begin());
    }
  };
  double temperature = 1.0;
  for (int step = 0; step < steps; ++step) {
    for (size_t i = 0; i < sa_state->size(); ++i) {
      int64_t proposal = Neighbor(space, (*sa_state)[i], rng);
      double sc = score(proposal);
      double delta = sc - cur_score[i];
      if (delta > 0 || rng->UniformReal() < std::exp(delta / std::max(temperature, 1e-3))) {
        (*sa_state)[i] = proposal;
        cur_score[i] = sc;
      }
      offer(cur_score[i], (*sa_state)[i]);
    }
    temperature *= 0.95;
  }
  std::vector<int64_t> batch;
  std::unordered_set<int64_t> chosen;
  for (auto it = heap.rbegin(); it != heap.rend() && static_cast<int>(batch.size()) < want;
       ++it) {
    if (chosen.insert(it->second).second) {
      batch.push_back(it->second);
    }
  }
  // Top up with random unvisited configs when the walk found too few.
  while (static_cast<int>(batch.size()) < want) {
    int64_t idx = static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(space.size())));
    if (!visited.count(idx) && chosen.insert(idx).second) {
      batch.push_back(idx);
    }
    if (chosen.size() + visited.size() >= static_cast<size_t>(space.size())) {
      break;
    }
  }
  return batch;
}

}  // namespace

TuneResult Tune(TuningTask* task, TunerKind kind, const TuneOptions& options) {
  Rng rng(options.seed);
  TuneResult result;
  result.best_seconds = 1e30;
  std::unordered_set<int64_t> visited;
  int64_t space_size = task->size();

  GbtModel model(GbtParams{40, 5, 0.25, 2, options.objective});
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;
  std::vector<int64_t> sa_state;
  // GA population.
  std::vector<std::pair<int64_t, double>> population;

  auto record = [&](int64_t idx, double seconds) {
    visited.insert(idx);
    if (seconds < result.best_seconds) {
      result.best_seconds = seconds;
      result.best_config = idx;
    }
    TrialRecord tr;
    tr.trial = static_cast<int>(result.history.size());
    tr.config_index = idx;
    tr.seconds = seconds;
    tr.best_seconds = result.best_seconds;
    result.history.push_back(tr);
  };

  auto learn = [&](int64_t idx, double seconds) {
    if (kind == TunerKind::kGenetic) {
      population.emplace_back(idx, seconds);
    }
    if (kind == TunerKind::kMlBased) {
      train_x.push_back(task->Features(idx));
      train_y.push_back(-std::log(std::max(seconds, 1e-12)));
    }
  };

  // Trial 0: the untuned default. The search's best can then never lose to what
  // compilation would pick on a cache miss, and the model starts from the one
  // config every production run has already implicitly measured.
  if (options.include_default && options.num_trials > 0 && space_size > 0) {
    int64_t default_idx = task->space().IndexOf(topi::DefaultConfig(task->space()));
    double seconds = MeasureBatch(task, {default_idx}, options)[0];
    record(default_idx, seconds);
    learn(default_idx, seconds);
  }

  while (static_cast<int>(result.history.size()) < options.num_trials &&
         static_cast<int64_t>(visited.size()) < space_size) {
    int want = std::min(options.batch_size,
                        options.num_trials - static_cast<int>(result.history.size()));
    std::vector<int64_t> batch;
    switch (kind) {
      case TunerKind::kRandom: {
        std::unordered_set<int64_t> chosen;
        while (static_cast<int>(batch.size()) < want &&
               static_cast<int64_t>(visited.size() + chosen.size()) < space_size) {
          int64_t idx =
              static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(space_size)));
          if (!visited.count(idx) && chosen.insert(idx).second) {
            batch.push_back(idx);
          }
        }
        break;
      }
      case TunerKind::kGenetic: {
        if (population.empty()) {
          for (int i = 0; i < want; ++i) {
            batch.push_back(
                static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(space_size))));
          }
        } else {
          auto tournament = [&]() {
            const auto& a = population[rng.Uniform(population.size())];
            const auto& b = population[rng.Uniform(population.size())];
            return a.second <= b.second ? a.first : b.first;
          };
          const topi::ConfigSpace& space = task->space();
          std::unordered_set<int64_t> chosen;
          while (static_cast<int>(batch.size()) < want) {
            topi::Config pa = space.At(tournament());
            topi::Config pb = space.At(tournament());
            topi::Config child;
            for (const topi::KnobSpec& k : space.knobs) {
              child[k.name] = rng.Uniform(2) == 0 ? pa[k.name] : pb[k.name];
              if (rng.UniformReal() < 0.1) {
                child[k.name] = k.choices[rng.Uniform(k.choices.size())];
              }
            }
            int64_t idx = space.IndexOf(child);
            if (chosen.insert(idx).second) {
              batch.push_back(idx);
            }
          }
        }
        break;
      }
      case TunerKind::kMlBased: {
        if (!model.trained()) {
          std::unordered_set<int64_t> chosen;
          while (static_cast<int>(batch.size()) < want &&
                 static_cast<int64_t>(visited.size() + chosen.size()) < space_size) {
            int64_t idx =
                static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(space_size)));
            if (!visited.count(idx) && chosen.insert(idx).second) {
              batch.push_back(idx);
            }
          }
        } else {
          if (sa_state.empty()) {
            for (int i = 0; i < options.sa_parallel; ++i) {
              sa_state.push_back(
                  static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(space_size))));
            }
          }
          batch = ExploreWithModel(task, model, &sa_state, want, options.sa_steps, visited,
                                   &rng);
        }
        break;
      }
    }
    if (batch.empty()) {
      break;
    }
    std::vector<double> seconds = MeasureBatch(task, batch, options);
    for (size_t i = 0; i < batch.size(); ++i) {
      record(batch[i], seconds[i]);
      learn(batch[i], seconds[i]);
    }
    if (kind == TunerKind::kGenetic) {
      std::sort(population.begin(), population.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      if (population.size() > 64) {
        population.resize(64);
      }
    }
    if (kind == TunerKind::kMlBased) {
      model.Fit(train_x, train_y);  // periodic refit on all collected data
    }
  }
  return result;
}

TuneResult TuneToCache(TuningTask* task, TunerKind kind, const TuneOptions& options,
                       TuningCache* cache) {
  TuneResult result = Tune(task, kind, options);
  if (cache != nullptr && result.best_config >= 0) {
    TuningCacheEntry entry;
    entry.key = task->CacheKey();
    entry.config = task->space().At(result.best_config);
    entry.seconds = result.best_seconds;
    entry.trials = static_cast<int>(result.history.size());
    cache->Put(std::move(entry));
  }
  return result;
}

}  // namespace autotune
}  // namespace tvmcpp
