// Gradient boosted regression trees (the XGBoost-style cost model of Section 5.2),
// implemented from scratch.
//
// Supports two training objectives:
//   * kRegression — squared error on -log(seconds)
//   * kRank       — pairwise logistic (RankNet-style) loss; the paper's choice, since the
//                   explorer only needs the relative order of candidates
#ifndef SRC_AUTOTUNE_GBT_H_
#define SRC_AUTOTUNE_GBT_H_

#include <memory>
#include <vector>

namespace tvmcpp {
namespace autotune {

enum class GbtObjective { kRegression, kRank };

struct GbtParams {
  int num_trees = 40;
  int max_depth = 5;
  double learning_rate = 0.25;
  int min_samples_leaf = 2;
  GbtObjective objective = GbtObjective::kRank;
};

// One regression tree node (array-encoded).
struct TreeNode {
  int feature = -1;       // -1 for leaves
  double threshold = 0;
  double value = 0;       // leaf prediction
  int left = -1;
  int right = -1;
};

class GbtModel {
 public:
  explicit GbtModel(GbtParams params = {}) : params_(params) {}

  // Fits to (features, score) pairs. Higher score = better (e.g. -log seconds or GFLOPS).
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  // Incremental refit over the accumulated dataset (the paper's periodic model update).
  void Update(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  double Predict(const std::vector<double>& features) const;
  std::vector<double> PredictBatch(const std::vector<std::vector<double>>& x) const;

  bool trained() const { return !trees_.empty(); }
  int num_samples() const { return static_cast<int>(data_x_.size()); }

 private:
  std::vector<TreeNode> FitTree(const std::vector<std::vector<double>>& x,
                                const std::vector<double>& gradients);
  static double PredictTree(const std::vector<TreeNode>& tree,
                            const std::vector<double>& f);

  GbtParams params_;
  std::vector<std::vector<TreeNode>> trees_;
  double base_ = 0;
  std::vector<std::vector<double>> data_x_;
  std::vector<double> data_y_;
};

}  // namespace autotune
}  // namespace tvmcpp

#endif  // SRC_AUTOTUNE_GBT_H_
