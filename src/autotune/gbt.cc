#include "src/autotune/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/support/logging.h"

namespace tvmcpp {
namespace autotune {

namespace {

struct Split {
  int feature = -1;
  double threshold = 0;
  double gain = 0;
};

// Exact best split of `indices` on squared-error reduction, scanning sorted values.
Split BestSplit(const std::vector<std::vector<double>>& x, const std::vector<double>& g,
                const std::vector<int>& indices, int min_leaf) {
  Split best;
  if (static_cast<int>(indices.size()) < 2 * min_leaf) {
    return best;
  }
  int dim = static_cast<int>(x[0].size());
  double total_sum = 0;
  for (int i : indices) {
    total_sum += g[static_cast<size_t>(i)];
  }
  double total_n = static_cast<double>(indices.size());
  double base_score = total_sum * total_sum / total_n;

  std::vector<int> order(indices);
  for (int feat = 0; feat < dim; ++feat) {
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return x[static_cast<size_t>(a)][static_cast<size_t>(feat)] <
             x[static_cast<size_t>(b)][static_cast<size_t>(feat)];
    });
    double left_sum = 0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      left_sum += g[static_cast<size_t>(order[i])];
      double lv = x[static_cast<size_t>(order[i])][static_cast<size_t>(feat)];
      double rv = x[static_cast<size_t>(order[i + 1])][static_cast<size_t>(feat)];
      if (lv == rv) {
        continue;
      }
      int left_n = static_cast<int>(i) + 1;
      int right_n = static_cast<int>(order.size()) - left_n;
      if (left_n < min_leaf || right_n < min_leaf) {
        continue;
      }
      double right_sum = total_sum - left_sum;
      double score = left_sum * left_sum / left_n + right_sum * right_sum / right_n;
      double gain = score - base_score;
      if (gain > best.gain) {
        best.feature = feat;
        best.threshold = (lv + rv) / 2;
        best.gain = gain;
      }
    }
  }
  return best;
}

int BuildNode(const std::vector<std::vector<double>>& x, const std::vector<double>& g,
              const std::vector<int>& indices, int depth, int max_depth, int min_leaf,
              std::vector<TreeNode>* tree) {
  int id = static_cast<int>(tree->size());
  tree->push_back(TreeNode{});
  double mean = 0;
  for (int i : indices) {
    mean += g[static_cast<size_t>(i)];
  }
  mean /= static_cast<double>(indices.size());
  (*tree)[static_cast<size_t>(id)].value = mean;
  if (depth >= max_depth) {
    return id;
  }
  Split split = BestSplit(x, g, indices, min_leaf);
  if (split.feature < 0 || split.gain < 1e-12) {
    return id;
  }
  std::vector<int> left, right;
  for (int i : indices) {
    if (x[static_cast<size_t>(i)][static_cast<size_t>(split.feature)] <= split.threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  if (left.empty() || right.empty()) {
    return id;
  }
  int l = BuildNode(x, g, left, depth + 1, max_depth, min_leaf, tree);
  int r = BuildNode(x, g, right, depth + 1, max_depth, min_leaf, tree);
  TreeNode& node = (*tree)[static_cast<size_t>(id)];
  node.feature = split.feature;
  node.threshold = split.threshold;
  node.left = l;
  node.right = r;
  return id;
}

}  // namespace

std::vector<TreeNode> GbtModel::FitTree(const std::vector<std::vector<double>>& x,
                                        const std::vector<double>& gradients) {
  std::vector<TreeNode> tree;
  std::vector<int> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0);
  BuildNode(x, gradients, indices, 0, params_.max_depth, params_.min_samples_leaf, &tree);
  return tree;
}

double GbtModel::PredictTree(const std::vector<TreeNode>& tree,
                             const std::vector<double>& f) {
  int id = 0;
  for (;;) {
    const TreeNode& n = tree[static_cast<size_t>(id)];
    if (n.feature < 0) {
      return n.value;
    }
    id = f[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
}

void GbtModel::Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y) {
  CHECK_EQ(x.size(), y.size());
  trees_.clear();
  if (x.empty()) {
    return;
  }
  base_ = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(y.size());
  std::vector<double> pred(x.size(), base_);
  int n = static_cast<int>(x.size());
  for (int t = 0; t < params_.num_trees; ++t) {
    // Pseudo-residuals under the chosen objective.
    std::vector<double> grad(x.size(), 0.0);
    if (params_.objective == GbtObjective::kRegression) {
      for (int i = 0; i < n; ++i) {
        grad[static_cast<size_t>(i)] = y[static_cast<size_t>(i)] - pred[static_cast<size_t>(i)];
      }
    } else {
      // Pairwise logistic rank loss: for each pair (i better than j), push pred_i up and
      // pred_j down with weight sigmoid(-(pred_i - pred_j)). Sampled pairs keep this
      // O(n * k).
      int pairs_per_sample = std::min(8, n - 1);
      for (int i = 0; i < n; ++i) {
        for (int p = 1; p <= pairs_per_sample; ++p) {
          int j = (i + p * 7919) % n;  // deterministic scatter
          if (i == j) {
            continue;
          }
          double yi = y[static_cast<size_t>(i)], yj = y[static_cast<size_t>(j)];
          if (yi == yj) {
            continue;
          }
          int hi = yi > yj ? i : j;
          int lo = yi > yj ? j : i;
          double margin = pred[static_cast<size_t>(hi)] - pred[static_cast<size_t>(lo)];
          double w = 1.0 / (1.0 + std::exp(margin));  // sigmoid(-margin)
          grad[static_cast<size_t>(hi)] += w;
          grad[static_cast<size_t>(lo)] -= w;
        }
      }
    }
    std::vector<TreeNode> tree = FitTree(x, grad);
    for (int i = 0; i < n; ++i) {
      pred[static_cast<size_t>(i)] +=
          params_.learning_rate * PredictTree(tree, x[static_cast<size_t>(i)]);
    }
    trees_.push_back(std::move(tree));
  }
}

void GbtModel::Update(const std::vector<std::vector<double>>& x,
                      const std::vector<double>& y) {
  data_x_.insert(data_x_.end(), x.begin(), x.end());
  data_y_.insert(data_y_.end(), y.begin(), y.end());
  Fit(data_x_, data_y_);
}

double GbtModel::Predict(const std::vector<double>& features) const {
  double p = base_;
  for (const auto& tree : trees_) {
    p += params_.learning_rate * PredictTree(tree, features);
  }
  return p;
}

std::vector<double> GbtModel::PredictBatch(const std::vector<std::vector<double>>& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& f : x) {
    out.push_back(Predict(f));
  }
  return out;
}

}  // namespace autotune
}  // namespace tvmcpp
