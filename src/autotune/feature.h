// Loop-program feature extraction for the ML cost model (Figure 13).
//
// Features include memory access counts and touched sizes of each buffer at each loop
// level, reuse ratios, arithmetic counts, and one-hot loop annotations — exactly the
// feature families the paper describes for the XGBoost-style model.
#ifndef SRC_AUTOTUNE_FEATURE_H_
#define SRC_AUTOTUNE_FEATURE_H_

#include <vector>

#include "src/lower/lower.h"
#include "src/sim/analysis.h"

namespace tvmcpp {
namespace autotune {

inline constexpr int kFeatureDim = 48;

// Extracts a fixed-length feature vector from analyzed program stats.
std::vector<double> ExtractFeatures(const ProgramStats& stats);

// Convenience: analyze + extract.
std::vector<double> ExtractFeatures(const LoweredFunc& func);

}  // namespace autotune
}  // namespace tvmcpp

#endif  // SRC_AUTOTUNE_FEATURE_H_
