// Loop-program feature extraction for the ML cost model (Figure 13).
//
// Two feature families share one fixed-length vector:
//   * the classic block (kFeatureDim): memory access counts and touched sizes of
//     each buffer at each loop level, reuse ratios, arithmetic counts, and
//     one-hot loop annotations — the feature families the paper describes for
//     the XGBoost-style model;
//   * the VM block (kVmFeatureDim): extracted from the *post*-specialization,
//     *post*-vectorization TIR plus vm::GetProgramStats opcode counts of the
//     compiled bytecode, so unroll / hoist / strength-reduction decisions shape
//     the cost landscape the model learns (ExtractFeaturesVm). Sim-mode tasks
//     leave the VM block zeroed (the machine model analyzes pre-VM TIR).
#ifndef SRC_AUTOTUNE_FEATURE_H_
#define SRC_AUTOTUNE_FEATURE_H_

#include <vector>

#include "src/lower/lower.h"
#include "src/sim/analysis.h"

namespace tvmcpp {
namespace autotune {

inline constexpr int kFeatureDim = 48;     // classic analysis block
inline constexpr int kVmFeatureDim = 16;   // bytecode-program block
inline constexpr int kFullFeatureDim = kFeatureDim + kVmFeatureDim;

// Extracts the classic kFeatureDim block from analyzed program stats.
std::vector<double> ExtractFeatures(const ProgramStats& stats);

// Convenience: analyze + extract (pre-specialization TIR, classic block only).
std::vector<double> ExtractFeatures(const LoweredFunc& func);

// VM-era extraction, kFullFeatureDim wide: mirrors the vm::CompileToProgram
// pipeline (SerializeThreadBlocks when thread-bound, VectorizeLoop,
// SpecializeLoops per `spec`, Simplify), analyzes the *specialized* loop nest
// for the classic block, then compiles the bytecode program and appends its
// opcode statistics. When the VM cannot compile the function the VM block stays
// zeroed (flag feature 0) — the classic block still describes the specialized
// nest the interpreter would run.
std::vector<double> ExtractFeaturesVm(const LoweredFunc& func,
                                      const LoopSpecializeOptions& spec);

}  // namespace autotune
}  // namespace tvmcpp

#endif  // SRC_AUTOTUNE_FEATURE_H_
