// The automated schedule optimizer (Section 5): schedule explorer + ML cost model +
// simulated distributed measurement.
//
// Three automation methods are provided, matching Figure 12 / Table 1:
//   * kMlBased — parallel simulated annealing guided by the GBT cost model, periodically
//                refit on measured data (the paper's system)
//   * kRandom  — uniform random search
//   * kGenetic — blackbox genetic algorithm (tournament selection + crossover + mutation)
#ifndef SRC_AUTOTUNE_TUNER_H_
#define SRC_AUTOTUNE_TUNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/autotune/gbt.h"
#include "src/runtime/rpc.h"
#include "src/runtime/target.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace autotune {

// A single-operator tuning task: workload + target + schedule space.
// Measurement = lower the config's schedule and cost it on the target machine model,
// with small deterministic noise (standing in for real measurement variance).
class TuningTask {
 public:
  TuningTask(topi::OpWorkload wl, Target target, uint64_t seed = 7,
             double noise_level = 0.05);

  const topi::ConfigSpace& space() const { return space_; }
  const topi::OpWorkload& workload() const { return wl_; }
  const Target& target() const { return target_; }

  // Measured (simulated) runtime of a config, seconds. Thread safe; cached.
  double Measure(int64_t config_index);
  // Noise-free model cost (used by benches to report stable bests).
  double TrueCost(int64_t config_index);
  // Feature vector of the lowered program for a config. Thread safe; cached.
  std::vector<double> Features(int64_t config_index);

  int64_t size() const { return space_.size(); }

 private:
  double CostOf(int64_t config_index, bool with_noise);

  topi::OpWorkload wl_;
  Target target_;
  topi::ConfigSpace space_;
  uint64_t seed_;
  double noise_level_;
  std::mutex mu_;
  std::unordered_map<int64_t, double> cost_cache_;
  std::unordered_map<int64_t, std::vector<double>> feature_cache_;
};

enum class TunerKind { kMlBased, kRandom, kGenetic };

struct TrialRecord {
  int trial = 0;
  int64_t config_index = 0;
  double seconds = 0;
  double best_seconds = 0;  // best seen so far (inclusive)
};

struct TuneResult {
  std::vector<TrialRecord> history;
  int64_t best_config = -1;
  double best_seconds = 0;
};

struct TuneOptions {
  int num_trials = 400;
  int batch_size = 16;
  uint64_t seed = 1;
  GbtObjective objective = GbtObjective::kRank;
  int sa_steps = 64;       // simulated-annealing walk length per batch
  int sa_parallel = 32;    // parallel annealing chains
  DevicePool* pool = nullptr;  // optional simulated RPC cluster for measurement
};

TuneResult Tune(TuningTask* task, TunerKind kind, const TuneOptions& options);

}  // namespace autotune
}  // namespace tvmcpp

#endif  // SRC_AUTOTUNE_TUNER_H_
