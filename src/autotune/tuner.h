// The automated schedule optimizer (Section 5): schedule explorer + ML cost model +
// real on-host measurement of compiled vm::Program runs.
//
// Three automation methods are provided, matching Figure 12 / Table 1:
//   * kMlBased — parallel simulated annealing guided by the GBT cost model, periodically
//                refit on measured data (the paper's system)
//   * kRandom  — uniform random search
//   * kGenetic — blackbox genetic algorithm (tournament selection + crossover + mutation)
//
// Measurement modes (MeasureOptions): CPU targets default to *real* measurement —
// the config's schedule is lowered, compiled to bytecode with the task's
// loop-specialization options, and timed wall-clock (warmup + min-of-k repeats,
// deterministic inputs). GPU/accelerator targets, whose codegen only executes
// serialized on this host, keep the src/sim machine-model cost; TVMCPP_TUNE_SIM=1
// forces the model everywhere (the fast deterministic CI path).
#ifndef SRC_AUTOTUNE_TUNER_H_
#define SRC_AUTOTUNE_TUNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/autotune/cache.h"
#include "src/autotune/gbt.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/rpc.h"
#include "src/runtime/target.h"
#include "src/topi/schedules.h"

namespace tvmcpp {

class ThreadPool;  // src/runtime/threadpool.h

namespace autotune {

// How a TuningTask turns a config index into seconds.
struct MeasureOptions {
  // Cost configs on the src/sim machine model (plus deterministic noise standing
  // in for measurement variance) instead of timing real vm::Program runs.
  bool use_sim = true;
  int warmup = 1;   // real mode: untimed runs before timing (TVMCPP_TUNE_WARMUP)
  int repeats = 3;  // real mode: timed runs, minimum taken (TVMCPP_TUNE_REPEATS)
  // Specialization config the measured programs are compiled with. Part of the
  // tuning-cache key: a config tuned with unrolling on may lose without it.
  LoopSpecializeOptions specialize = LoopSpecializeOptions::FromEnv();

  // Real measurement for CPU targets unless TVMCPP_TUNE_SIM=1; sim for GPU /
  // accelerator targets always. Also reads the warmup/repeat knobs.
  static MeasureOptions FromEnv(const Target& target);
};

// A single-operator tuning task: workload + target + schedule space + measurer.
class TuningTask {
 public:
  // Measurement mode per MeasureOptions::FromEnv(target).
  TuningTask(topi::OpWorkload wl, Target target, uint64_t seed = 7,
             double noise_level = 0.05);
  TuningTask(topi::OpWorkload wl, Target target, MeasureOptions measure,
             uint64_t seed = 7, double noise_level = 0.05);

  const topi::ConfigSpace& space() const { return space_; }
  const topi::OpWorkload& workload() const { return wl_; }
  const Target& target() const { return target_; }
  const MeasureOptions& measure_options() const { return measure_; }

  // Seconds for a config. Real mode: wall-clock best-of-repeats of the compiled
  // program on deterministic inputs (lower/compile may run concurrently; the
  // timed sections serialize on an internal mutex so parallel MeasureBatch
  // callers cannot contaminate each other's numbers). Sim mode: machine-model
  // cost with deterministic per-config noise. Thread safe; cached.
  double Measure(int64_t config_index);
  // Noise-free cost: the sim model estimate, or the cached real measurement.
  double TrueCost(int64_t config_index);
  // Feature vector for a config, kFullFeatureDim wide. Real mode extracts from
  // the post-specialization TIR + bytecode opcode stats (ExtractFeaturesVm);
  // sim mode keeps the classic pre-VM block with the VM block zeroed. Never
  // triggers a timed run. Thread safe; cached.
  std::vector<double> Features(int64_t config_index);

  // The persistent-cache key of this task (TuningKey over workload, target, and
  // the measurement specialize config).
  std::string CacheKey() const;

  int64_t size() const { return space_.size(); }

 private:
  double CostOf(int64_t config_index, bool with_noise);  // sim path
  double MeasureReal(int64_t config_index);              // may throw InternalError
  LoweredFunc LowerConfig(int64_t config_index) const;   // may throw InternalError
  void EnsureArgBuffers(const LoweredFunc& func);

  topi::OpWorkload wl_;
  Target target_;
  topi::ConfigSpace space_;
  MeasureOptions measure_;
  uint64_t seed_;
  double noise_level_;
  std::mutex mu_;       // caches + buffer init
  std::mutex time_mu_;  // serializes warmup + timed runs
  std::unordered_map<int64_t, double> cost_cache_;
  std::unordered_map<int64_t, std::vector<double>> feature_cache_;
  std::vector<NDArray> arg_arrays_;  // deterministic inputs, shared by all configs
  std::vector<BufferBinding> arg_bindings_;
};

enum class TunerKind { kMlBased, kRandom, kGenetic };

struct TrialRecord {
  int trial = 0;
  int64_t config_index = 0;
  double seconds = 0;
  double best_seconds = 0;  // best seen so far (inclusive)
};

struct TuneResult {
  std::vector<TrialRecord> history;
  int64_t best_config = -1;
  double best_seconds = 0;
};

struct TuneOptions {
  int num_trials = 400;
  int batch_size = 16;
  uint64_t seed = 1;
  GbtObjective objective = GbtObjective::kRank;
  int sa_steps = 64;       // simulated-annealing walk length per batch
  int sa_parallel = 32;    // parallel annealing chains
  // Measure the untuned default config as trial 0, so the tuner's best is never
  // worse than what compilation would pick on a cache miss.
  bool include_default = true;
  DevicePool* pool = nullptr;   // optional simulated RPC cluster for measurement
  // Worker pool for MeasureBatch: trials lower/compile concurrently (real-mode
  // timed sections still serialize inside the task). nullptr = sequential.
  ThreadPool* workers = nullptr;
};

TuneResult Tune(TuningTask* task, TunerKind kind, const TuneOptions& options);

// Tune, then record the winner in `cache` under task->CacheKey() (no-op when
// `cache` is null or tuning found nothing). The caller persists via Save().
TuneResult TuneToCache(TuningTask* task, TunerKind kind, const TuneOptions& options,
                       TuningCache* cache);

}  // namespace autotune
}  // namespace tvmcpp

#endif  // SRC_AUTOTUNE_TUNER_H_
