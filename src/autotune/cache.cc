#include "src/autotune/cache.h"

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <utility>
#include <vector>

#include "src/support/failpoint.h"
#include "src/support/logging.h"

namespace tvmcpp {
namespace autotune {

std::string TuningKey(const topi::OpWorkload& wl, const Target& target,
                      const LoopSpecializeOptions& spec) {
  std::string sig = "u" + std::to_string(spec.unroll_limit);
  sig += spec.hoist_invariants ? "_h1" : "_h0";
  sig += spec.strength_reduce ? "_s1" : "_s0";
  sig += spec.peephole ? "_p1" : "_p0";
  return wl.Key() + "@" + target.name + "@" + sig;
}

uint64_t TuningKeyHash(const std::string& key) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (unsigned char c : key) {
    h ^= static_cast<uint64_t>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

namespace {

std::string HexOf(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

// --- minimal JSON-line field extraction (writer below emits exactly this shape,
// but readers stay tolerant: any line that does not parse is skipped) ----------

bool FindStringField(const std::string& line, const std::string& name,
                     std::string* out) {
  std::string tag = "\"" + name + "\": \"";
  size_t at = line.find(tag);
  if (at == std::string::npos) {
    return false;
  }
  size_t begin = at + tag.size();
  size_t end = line.find('"', begin);
  if (end == std::string::npos) {
    return false;
  }
  *out = line.substr(begin, end - begin);
  return true;
}

bool FindNumberField(const std::string& line, const std::string& name, double* out) {
  std::string tag = "\"" + name + "\": ";
  size_t at = line.find(tag);
  if (at == std::string::npos) {
    return false;
  }
  const char* s = line.c_str() + at + tag.size();
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s) {
    return false;
  }
  *out = v;
  return true;
}

// Parses the `"config": {"knob": value, ...}` object.
bool FindConfigField(const std::string& line, topi::Config* out) {
  std::string tag = "\"config\": {";
  size_t at = line.find(tag);
  if (at == std::string::npos) {
    return false;
  }
  size_t pos = at + tag.size();
  while (pos < line.size() && line[pos] != '}') {
    size_t kb = line.find('"', pos);
    if (kb == std::string::npos) {
      return false;
    }
    size_t ke = line.find('"', kb + 1);
    if (ke == std::string::npos) {
      return false;
    }
    std::string knob = line.substr(kb + 1, ke - kb - 1);
    size_t colon = line.find(':', ke);
    if (colon == std::string::npos) {
      return false;
    }
    const char* s = line.c_str() + colon + 1;
    char* end = nullptr;
    long long v = std::strtoll(s, &end, 10);
    if (end == s) {
      return false;
    }
    (*out)[knob] = static_cast<int64_t>(v);
    pos = static_cast<size_t>(end - line.c_str());
    while (pos < line.size() && (line[pos] == ',' || line[pos] == ' ')) {
      ++pos;
    }
  }
  return pos < line.size();  // saw the closing brace
}

}  // namespace

bool TuningCache::Lookup(const std::string& key, TuningCacheEntry* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

void TuningCache::Put(TuningCacheEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[entry.key] = std::move(entry);
}

bool TuningCache::Load(const std::string& path) {
  try {
    FAILPOINT("tune.cache_load");
  } catch (const failpoint::InjectedFault&) {
    LOG(WARNING) << "tuning cache load fault injected for " << path
                 << "; falling back to untuned schedules";
    return false;
  }
  std::FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    LOG(WARNING) << "tuning cache " << path
                 << " missing or unreadable; falling back to untuned schedules";
    return false;
  }
  std::vector<std::string> lines;
  std::string line;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      if (!line.empty()) {
        lines.push_back(line);
      }
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) {
    lines.push_back(line);
  }
  std::fclose(in);

  double version = -1;
  if (lines.empty() || !FindNumberField(lines[0], "tvmcpp_tuning_cache", &version) ||
      static_cast<int>(version) != kTuningCacheVersion) {
    LOG(WARNING) << "tuning cache " << path << " has no version-"
                 << kTuningCacheVersion
                 << " header; ignoring it (untuned schedules)";
    return false;
  }
  int loaded = 0, skipped = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    TuningCacheEntry e;
    std::string hash_hex;
    double seconds = 0, trials = 0;
    bool ok = FindStringField(lines[i], "key", &e.key) &&
              FindStringField(lines[i], "hash", &hash_hex) &&
              FindConfigField(lines[i], &e.config);
    // The stored hash must match the recomputed one: a truncated or bit-flipped
    // line fails here instead of poisoning compilation with a garbled config.
    if (ok && hash_hex != HexOf(TuningKeyHash(e.key))) {
      ok = false;
    }
    if (!ok) {
      ++skipped;
      continue;
    }
    FindNumberField(lines[i], "seconds", &seconds);
    FindNumberField(lines[i], "trials", &trials);
    e.seconds = seconds;
    e.trials = static_cast<int>(trials);
    Put(std::move(e));
    ++loaded;
  }
  if (skipped > 0) {
    LOG(WARNING) << "tuning cache " << path << ": skipped " << skipped
                 << " corrupt entr" << (skipped == 1 ? "y" : "ies") << " (loaded "
                 << loaded << ")";
  }
  return true;
}

bool TuningCache::Save(const std::string& path) const {
  try {
    FAILPOINT("tune.cache_save");
  } catch (const failpoint::InjectedFault&) {
    LOG(WARNING) << "tuning cache save fault injected for " << path
                 << "; tuned configs not persisted";
    return false;
  }
  std::vector<TuningCacheEntry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(entries_.size());
    for (const auto& kv : entries_) {
      entries.push_back(kv.second);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const TuningCacheEntry& a, const TuningCacheEntry& b) {
              return a.key < b.key;
            });
  std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    LOG(WARNING) << "cannot write tuning cache " << tmp
                 << "; tuned configs not persisted";
    return false;
  }
  std::fprintf(out, "{\"tvmcpp_tuning_cache\": %d}\n", kTuningCacheVersion);
  for (const TuningCacheEntry& e : entries) {
    std::fprintf(out, "{\"key\": \"%s\", \"hash\": \"%s\", \"seconds\": %.9g, "
                      "\"trials\": %d, \"config\": {",
                 e.key.c_str(), HexOf(TuningKeyHash(e.key)).c_str(), e.seconds,
                 e.trials);
    bool first = true;
    for (const auto& kv : e.config) {  // std::map: sorted, deterministic output
      std::fprintf(out, "%s\"%s\": %lld", first ? "" : ", ", kv.first.c_str(),
                   static_cast<long long>(kv.second));
      first = false;
    }
    std::fprintf(out, "}}\n");
  }
  std::fclose(out);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    LOG(WARNING) << "cannot move tuning cache into place at " << path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void TuningCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t TuningCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t TuningCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void TuningCache::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ = 0;
  misses_ = 0;
}

bool ApplyCachedConfig(const topi::ConfigSpace& space, const topi::Config& cached,
                       topi::Config* out) {
  topi::Config result = topi::DefaultConfig(space);
  for (const topi::KnobSpec& knob : space.knobs) {
    auto it = cached.find(knob.name);
    if (it == cached.end()) {
      continue;  // knob added since the entry was tuned: keep the default choice
    }
    if (std::find(knob.choices.begin(), knob.choices.end(), it->second) ==
        knob.choices.end()) {
      return false;
    }
    result[knob.name] = it->second;
  }
  *out = std::move(result);
  return true;
}

TuningCache& GlobalTuningCache() {
  static TuningCache* cache = [] {
    auto* c = new TuningCache;
    if (const char* path = std::getenv("TVMCPP_TUNE_CACHE")) {
      c->Load(path);
    }
    return c;
  }();
  return *cache;
}

void ReloadGlobalTuningCache() {
  TuningCache& cache = GlobalTuningCache();
  cache.Clear();
  cache.ResetCounters();
  if (const char* path = std::getenv("TVMCPP_TUNE_CACHE")) {
    cache.Load(path);
  }
}

}  // namespace autotune
}  // namespace tvmcpp
