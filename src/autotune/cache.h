// Persistent tuning cache: what the tuner learned, keyed so compilation can find
// it again (the "fleet warms its tuning cache from live traffic" story).
//
// Keys encode everything that changes which schedule config is best: the full
// OpWorkload (op kind, shape, dtype, batch), the target, and the loop-
// specialization config the measured programs were compiled with. The on-disk
// form is a JSON-lines file (header line with a schema version, then one entry
// per line) at the path named by TVMCPP_TUNE_CACHE; graph compilation consults
// the process-wide GlobalTuningCache() on every master-workload lowering and
// falls back to the untuned default config on a miss.
//
// Robustness contract (fail-points tune.cache_load / tune.cache_save): a
// missing, corrupt, version-mismatched, or faulted cache file degrades to
// untuned schedules with a LOG(WARNING) — it never crashes compilation and
// never changes results (tuned and untuned schedules are bitwise-equivalent by
// construction; see docs/ARCHITECTURE.md "Autotuning").
#ifndef SRC_AUTOTUNE_CACHE_H_
#define SRC_AUTOTUNE_CACHE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/lower/lower.h"
#include "src/runtime/target.h"
#include "src/topi/schedules.h"

namespace tvmcpp {
namespace autotune {

// On-disk schema version; files written by a different version load as empty.
inline constexpr int kTuningCacheVersion = 1;

// Canonical cache key of one tuning point:
//   <OpWorkload::Key()>@<target name>@<specialize signature>
// e.g. "dense_n16_h1_w1_ic1_oc256_k256_s1_p0_float32@arm_cpu@u8_h1_s1_p1".
std::string TuningKey(const topi::OpWorkload& wl, const Target& target,
                      const LoopSpecializeOptions& spec);

// FNV-1a (64-bit) of the key string. Stable across processes and platforms —
// stored with each entry so corrupt lines are detected, and asserted against a
// pinned constant in tests so the key schema cannot drift silently.
uint64_t TuningKeyHash(const std::string& key);

struct TuningCacheEntry {
  std::string key;
  topi::Config config;  // the winning knob assignment
  double seconds = 0;   // best measured seconds when tuned
  int trials = 0;       // trial budget that produced it
};

// Thread-safe in-memory map with JSON-lines persistence. Lookup() keeps
// hit/miss counters so CI can prove a cache written by one job is actually
// consumed by another.
class TuningCache {
 public:
  // True when `key` is present; copies the entry into `out` (if non-null).
  bool Lookup(const std::string& key, TuningCacheEntry* out) const;
  void Put(TuningCacheEntry entry);

  // Merges the file's entries over the current ones. Returns false — leaving
  // previously loaded entries untouched and logging a warning — when the file
  // is missing, unreadable, version-mismatched, or fails the tune.cache_load
  // fail-point; individually corrupt lines are skipped, not fatal.
  bool Load(const std::string& path);
  // Writes all entries (header first, entries sorted by key) via a temp file +
  // rename. Returns false with a warning on I/O failure or tune.cache_save.
  bool Save(const std::string& path) const;

  void Clear();
  size_t size() const;

  int64_t hits() const;
  int64_t misses() const;
  void ResetCounters();

 private:
  mutable std::mutex mu_;
  mutable int64_t hits_ = 0;
  mutable int64_t misses_ = 0;
  std::unordered_map<std::string, TuningCacheEntry> entries_;
};

// Validates a cached config against a schedule space: starts from the space's
// default config and overlays every cached knob whose value is a legal choice.
// Returns false (leaving `out` untouched) when any cached knob value is not a
// legal choice for its knob — a stale or corrupt entry must not instantiate an
// unverifiable schedule.
bool ApplyCachedConfig(const topi::ConfigSpace& space, const topi::Config& cached,
                       topi::Config* out);

// The process-wide cache graph compilation consults. Lazily loaded from the
// TVMCPP_TUNE_CACHE file on first use (empty when the variable is unset).
TuningCache& GlobalTuningCache();
// Clears the global cache (and its counters) and re-reads TVMCPP_TUNE_CACHE.
// For tests and for benches that write the cache file then want it consumed.
void ReloadGlobalTuningCache();

}  // namespace autotune
}  // namespace tvmcpp

#endif  // SRC_AUTOTUNE_CACHE_H_
