#include "src/codegen/native.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/support/failpoint.h"
#include "src/support/logging.h"

namespace tvmcpp {
namespace codegen {

namespace {

// Flags that pin bitwise float semantics (see the header comment).
constexpr const char* kCompileFlags =
    "-O2 -fPIC -shared -std=gnu11 -ffp-contract=off -fno-builtin";

std::atomic<int64_t> g_emits{0};
std::atomic<int64_t> g_emit_failures{0};
std::atomic<int64_t> g_compiles{0};
std::atomic<int64_t> g_mem_hits{0};
std::atomic<int64_t> g_disk_hits{0};
std::atomic<int64_t> g_compile_failures{0};

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string CompilerPath() {
  const char* cc = std::getenv("TVMCPP_NATIVE_CC");
  return (cc != nullptr && *cc != '\0') ? cc : "cc";
}

// mkdir -p; best effort (the subsequent fopen/compile surfaces real failures).
void MakeDirs(const std::string& path) {
  std::string cur;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty() && cur != ".") {
        ::mkdir(cur.c_str(), 0755);
      }
    }
    if (i < path.size()) {
      cur.push_back(path[i]);
    }
  }
}

// Artifact directory: TVMCPP_NATIVE_CACHE (shared across processes) or a
// per-process temp directory. Read per call so tests can repoint it.
std::string CacheDir() {
  const char* dir = std::getenv("TVMCPP_NATIVE_CACHE");
  std::string d;
  if (dir != nullptr && *dir != '\0') {
    d = dir;
  } else {
    d = "/tmp/tvmcpp-native-" + std::to_string(::getpid());
  }
  if (d.find('/') == std::string::npos) {
    d = "./" + d;  // dlopen treats slash-free paths as library search names
  }
  MakeDirs(d);
  return d;
}

bool WriteFileAtomic(const std::string& path, const std::string& content) {
  std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      return false;
    }
    os << content;
    if (!os) {
      return false;
    }
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

std::string ReadFileTail(const std::string& path, size_t max_bytes = 2000) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return "";
  }
  std::stringstream ss;
  ss << is.rdbuf();
  std::string s = ss.str();
  if (s.size() > max_bytes) {
    s = s.substr(s.size() - max_bytes);
  }
  return s;
}

std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<uint64_t, std::shared_ptr<NativeModule>>& Registry() {
  static auto* registry =
      new std::unordered_map<uint64_t, std::shared_ptr<NativeModule>>();
  return *registry;
}

// dlopen + verify every expected symbol resolves (a cached .so from a partial
// write or a different build would miss some). Returns nullptr when unusable.
std::shared_ptr<NativeModule> TryOpen(const std::string& so_path,
                                      const std::vector<std::string>& symbols) {
  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return nullptr;
  }
  auto module = std::make_shared<NativeModule>(handle, so_path);
  for (const std::string& sym : symbols) {
    if (module->Get(sym) == nullptr) {
      return nullptr;  // stale/corrupt entry: treat as absent, recompile
    }
  }
  return module;
}

}  // namespace

NativeModule::NativeModule(void* handle, std::string path)
    : handle_(handle), path_(std::move(path)) {}

NativeModule::~NativeModule() {
  if (handle_ != nullptr) {
    ::dlclose(handle_);
  }
}

KernelFn NativeModule::Get(const std::string& symbol) const {
  return reinterpret_cast<KernelFn>(::dlsym(handle_, symbol.c_str()));
}

std::shared_ptr<NativeModule> CompileNativeModule(const std::vector<CSource>& srcs) {
  // Assemble one translation unit; identical kernels (content-addressed symbols)
  // dedupe here.
  std::string full = Preamble();
  std::vector<std::string> symbols;
  std::unordered_set<std::string> seen;
  for (const CSource& s : srcs) {
    if (!s.ok) {
      continue;
    }
    if (seen.insert(s.symbol).second) {
      full += s.code;
      full += '\n';
      symbols.push_back(s.symbol);
    }
  }
  if (symbols.empty()) {
    return nullptr;
  }
  std::string cc = CompilerPath();
  uint64_t hash = Fnv1a(full + "\n/*flags*/" + kCompileFlags + "\n/*cc*/" + cc);

  {
    std::lock_guard<std::mutex> lock(RegistryMu());
    auto it = Registry().find(hash);
    if (it != Registry().end()) {
      g_mem_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  std::string dir = CacheDir();
  std::string stem = dir + "/tn_" + HexU64(hash);
  std::string so_path = stem + ".so";

  struct stat st;
  if (::stat(so_path.c_str(), &st) == 0) {
    auto module = TryOpen(so_path, symbols);
    if (module != nullptr) {
      g_disk_hits.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(RegistryMu());
      Registry()[hash] = module;
      return module;
    }
    LOG(WARNING) << "native: cache entry " << so_path
                 << " is corrupt or stale; recompiling";
  }

  std::string c_path = stem + ".c";
  if (!WriteFileAtomic(c_path, full)) {
    g_compile_failures.fetch_add(1, std::memory_order_relaxed);
    LOG(WARNING) << "native: cannot write " << c_path;
    return nullptr;
  }
  std::string tmp_so = so_path + ".tmp." + std::to_string(::getpid());
  std::string err_path = stem + ".err." + std::to_string(::getpid());
  std::string cmd = cc + " " + kCompileFlags + " -o '" + tmp_so + "' '" + c_path +
                    "' -lm 2> '" + err_path + "'";
  g_compiles.fetch_add(1, std::memory_order_relaxed);
  int rc = std::system(cmd.c_str());
  std::string err = ReadFileTail(err_path);
  std::remove(err_path.c_str());
  if (rc != 0 || std::rename(tmp_so.c_str(), so_path.c_str()) != 0) {
    g_compile_failures.fetch_add(1, std::memory_order_relaxed);
    std::remove(tmp_so.c_str());
    LOG(WARNING) << "native: compile failed (rc=" << rc << ") for " << c_path << ": "
                 << err;
    return nullptr;
  }
  auto module = TryOpen(so_path, symbols);
  if (module == nullptr) {
    g_compile_failures.fetch_add(1, std::memory_order_relaxed);
    LOG(WARNING) << "native: dlopen failed for freshly built " << so_path << ": "
                 << ::dlerror();
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto [it, inserted] = Registry().emplace(hash, module);
  return it->second;  // a concurrent compile may have won the race; share its module
}

std::vector<NativeKernel> CompileNativeKernels(
    const std::vector<const LoweredFunc*>& funcs, const LoopSpecializeOptions& spec) {
  std::vector<CSource> srcs;
  srcs.reserve(funcs.size());
  for (const LoweredFunc* f : funcs) {
    CSource s = EmitC(*f, spec);
    g_emits.fetch_add(1, std::memory_order_relaxed);
    if (!s.ok) {
      g_emit_failures.fetch_add(1, std::memory_order_relaxed);
      LOG(WARNING) << "native: cannot emit " << f->name << ": " << s.error;
    }
    srcs.push_back(std::move(s));
  }
  std::vector<NativeKernel> kernels(funcs.size());
  auto module = CompileNativeModule(srcs);
  if (module == nullptr) {
    return kernels;
  }
  for (size_t i = 0; i < srcs.size(); ++i) {
    if (srcs[i].ok) {
      kernels[i] = NativeKernel{module, module->Get(srcs[i].symbol)};
    }
  }
  return kernels;
}

NativeKernel CompileNativeKernel(const LoweredFunc& func,
                                 const LoopSpecializeOptions& spec) {
  return CompileNativeKernels({&func}, spec)[0];
}

void RunNativeKernel(const NativeKernel& kernel,
                     const std::vector<BufferBinding>& args) {
  CHECK(kernel.fn != nullptr) << "RunNativeKernel on an empty kernel";
  // Throwing fail-point mirroring "vm.run": an injected error surfaces as a
  // per-run fault feeding the serving layer's retry/fallback ladder.
  FAILPOINT("native.run");
  std::vector<void*> ptrs;
  ptrs.reserve(args.size());
  for (const BufferBinding& a : args) {
    ptrs.push_back(a.data);
  }
  kernel.fn(ptrs.data());
}

bool RunLoweredNative(const LoweredFunc& func, const std::vector<BufferBinding>& args) {
  struct CacheEntry {
    Stmt keepalive;  // pins the body so the pointer key cannot be reused
    std::vector<const VarNode*> arg_vars;
    NativeKernel kernel;  // empty when emission/compilation failed (cached miss)
  };
  static std::mutex mu;
  static auto* cache = new std::unordered_map<const StmtNode*, CacheEntry>();
  CHECK_EQ(args.size(), func.args.size()) << "argument count mismatch for " << func.name;
  auto signature = [&] {
    std::vector<const VarNode*> sig;
    for (const BufferArg& a : func.args) {
      sig.push_back(a.var.get());
    }
    return sig;
  };
  NativeKernel kernel;
  bool cached = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(func.body.get());
    if (it != cache->end()) {
      if (it->second.arg_vars == signature()) {
        kernel = it->second.kernel;
        cached = true;
      } else {
        cache->erase(it);
      }
    }
  }
  if (!cached) {
    kernel = CompileNativeKernel(func, LoopSpecializeOptions::FromEnv());
    std::lock_guard<std::mutex> lock(mu);
    if (cache->size() >= 1024) {
      cache->clear();  // crude eviction: bounds pinned ASTs in long-running processes
    }
    (*cache)[func.body.get()] = CacheEntry{func.body, signature(), kernel};
  }
  if (!kernel) {
    return false;
  }
  RunNativeKernel(kernel, args);
  return true;
}

NativeStats GetNativeStats() {
  NativeStats s;
  s.emits = g_emits.load(std::memory_order_relaxed);
  s.emit_failures = g_emit_failures.load(std::memory_order_relaxed);
  s.compiles = g_compiles.load(std::memory_order_relaxed);
  s.mem_hits = g_mem_hits.load(std::memory_order_relaxed);
  s.disk_hits = g_disk_hits.load(std::memory_order_relaxed);
  s.compile_failures = g_compile_failures.load(std::memory_order_relaxed);
  return s;
}

void ResetNativeStats() {
  g_emits.store(0, std::memory_order_relaxed);
  g_emit_failures.store(0, std::memory_order_relaxed);
  g_compiles.store(0, std::memory_order_relaxed);
  g_mem_hits.store(0, std::memory_order_relaxed);
  g_disk_hits.store(0, std::memory_order_relaxed);
  g_compile_failures.store(0, std::memory_order_relaxed);
}

void ClearNativeModuleRegistryForTesting() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry().clear();
}

}  // namespace codegen
}  // namespace tvmcpp
