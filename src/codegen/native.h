// Tier-2 AOT backend, part 2: compile emitted C with the system compiler, dlopen
// the shared object, and cache artifacts by content hash.
//
// CompileNativeModule batches any number of emitted kernels (codegen::CSource)
// into ONE translation unit / one compiler invocation / one .so — the dominant
// cost of the native tier is process spawn + compile, so a whole graph (or a
// whole fuzzer batch) pays it once. Artifacts are cached at three levels:
//   1. in-process: a registry keyed by the 64-bit FNV-1a content hash of the full
//      source + compile flags + compiler, so recompiling an identical module is a
//      map lookup;
//   2. on disk: <dir>/tn_<hash>.so (plus the .c for debugging) under
//      TVMCPP_NATIVE_CACHE, shared across processes; unset, a per-process temp
//      directory is used (no cross-process reuse, no stale-dir management);
//   3. corrupt or stale disk entries (dlopen failure, missing symbol) are
//      recompiled in place via write-temp + atomic rename — never a crash.
//
// Compile flags pin bitwise-exact float semantics: no -ffast-math, -ffp-contract=off
// (no FMA fusing of a*b+c), and -fno-builtin (libm calls stay real glibc calls, the
// same ones the interpreter makes, instead of being constant-folded by the compiler
// with correctly-rounded MPFR results glibc does not match).
#ifndef SRC_CODEGEN_NATIVE_H_
#define SRC_CODEGEN_NATIVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/codegen.h"
#include "src/interp/interp.h"
#include "src/lower/lower.h"

namespace tvmcpp {
namespace codegen {

// ABI of every emitted kernel: positional data pointers, widened storage layout.
using KernelFn = void (*)(void**);

// A dlopen'd shared object. Closed (dlclose) when the last reference dies.
class NativeModule {
 public:
  NativeModule(void* handle, std::string path);
  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  // Resolves an emitted kernel symbol; nullptr when absent.
  KernelFn Get(const std::string& symbol) const;
  const std::string& path() const { return path_; }

 private:
  void* handle_;
  std::string path_;
};

// Compiles every ok source into one cached module. Returns nullptr when there is
// nothing to compile or the system compiler rejects the unit (counted, logged).
std::shared_ptr<NativeModule> CompileNativeModule(const std::vector<CSource>& srcs);

// One callable kernel pinned by the module that owns its code.
struct NativeKernel {
  std::shared_ptr<NativeModule> module;
  KernelFn fn = nullptr;
  explicit operator bool() const { return fn != nullptr; }
};

// Emits + compiles a batch of functions as one module (one compiler invocation).
// Entry i corresponds to funcs[i]; fn == nullptr where emission failed.
std::vector<NativeKernel> CompileNativeKernels(
    const std::vector<const LoweredFunc*>& funcs, const LoopSpecializeOptions& spec);

// Single-function convenience over CompileNativeKernels.
NativeKernel CompileNativeKernel(const LoweredFunc& func,
                                 const LoopSpecializeOptions& spec);

// Invokes a compiled kernel on positionally-bound buffers (fail-point "native.run").
void RunNativeKernel(const NativeKernel& kernel,
                     const std::vector<BufferBinding>& args);

// Emit-with-cache + compile + execute, used by the RunLowered dispatcher (per-body
// cache like vm::RunLoweredVM). Returns false when the function cannot be emitted
// or compiled (caller falls back down-tier).
bool RunLoweredNative(const LoweredFunc& func, const std::vector<BufferBinding>& args);

// Counters for tests and benches. emits/emit_failures: EmitC outcomes observed by
// kernel compilation; compiles: real compiler invocations; mem_hits/disk_hits:
// module-cache hits by level; compile_failures: compiler or dlopen failures.
struct NativeStats {
  int64_t emits = 0;
  int64_t emit_failures = 0;
  int64_t compiles = 0;
  int64_t mem_hits = 0;
  int64_t disk_hits = 0;
  int64_t compile_failures = 0;
};
NativeStats GetNativeStats();
void ResetNativeStats();

// Drops the in-process module registry (modules stay alive while kernels hold
// them) so tests can exercise the disk-cache path in one process.
void ClearNativeModuleRegistryForTesting();

}  // namespace codegen
}  // namespace tvmcpp

#endif  // SRC_CODEGEN_NATIVE_H_
