// Tier-2 AOT backend, part 1: TIR -> C pretty-printer.
//
// EmitC lowers a LoweredFunc body through the exact same preprocessing pipeline the
// bytecode VM uses (SerializeThreadBlocks / VectorizeLoop / SpecializeLoops /
// Simplify) and pretty-prints the result as a self-contained C function over the
// interpreter's widened buffer layout (float16 stored as float, int8 as int8_t, ...):
//
//   void <symbol>(void** bufs);   // bufs[i] = args[i].data, positionally
//
// The emitted code mirrors the reference interpreter's value model statement by
// statement — all float arithmetic in double, ints as int64_t, floor div/mod,
// float16 rounded through the shared RNE grid on cast/store, Select/if_then_else
// lazy, predicated lanes skipped, vector stores per lane in predicate -> index ->
// value order — so a compiled kernel is bitwise-identical to the interpreter (and
// therefore to the VM) on every non-trapping program. Constructs outside the
// supported set (unknown intrinsics, Reduce, ...) mark the source not-ok and the
// caller falls back down-tier, exactly like vm::CompileToProgram returning null.
//
// Part 2 (native.h) compiles emitted sources with the system compiler and dlopens
// the result.
#ifndef SRC_CODEGEN_CODEGEN_H_
#define SRC_CODEGEN_CODEGEN_H_

#include <string>

#include "src/lower/lower.h"

namespace tvmcpp {
namespace codegen {

// One emitted kernel: a C function definition (no includes; pairs with Preamble()).
struct CSource {
  std::string symbol;  // C function name, content-addressed (stable across runs)
  std::string code;    // full function definition text
  bool ok = false;
  std::string error;   // first unsupported construct when !ok
};

// Shared helper block (types, floor div/mod, float16 RNE helpers, math wrappers)
// that must precede any emitted function in a translation unit.
const std::string& Preamble();

// Emits `func` as C after the VM's preprocessing pipeline under `spec`.
CSource EmitC(const LoweredFunc& func, const LoopSpecializeOptions& spec);

}  // namespace codegen
}  // namespace tvmcpp

#endif  // SRC_CODEGEN_CODEGEN_H_
