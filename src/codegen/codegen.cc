#include "src/codegen/codegen.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/intrin_table.h"
#include "src/ir/printer.h"
#include "src/ir/simplify.h"

namespace tvmcpp {
namespace codegen {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HexU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string SanitizeIdent(const std::string& s) {
  std::string out;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string CEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// C storage type for the interpreter's widened buffer layout (InterpElementBytes).
const char* StorageCType(DataType t) {
  if (t.is_float()) {
    return "float";
  }
  int bytes = InterpElementBytes(t);
  if (bytes == 1) {
    return "int8_t";
  }
  if (bytes == 4) {
    return "int32_t";
  }
  return "int64_t";
}

// A C expression string plus the static value-model type it evaluates to: double
// (is_float) or int64_t. Mirrors the interpreter's Value::is_float flag, which is
// statically determined (same rule the VM's StaticTypeOf uses).
struct CV {
  std::string s;
  bool is_float = false;
};

class CEmitter {
 public:
  std::string EmitFunc(const LoweredFunc& func, const Stmt& body) {
    body_.clear();
    indent_ = 1;
    for (size_t i = 0; i < func.args.size(); ++i) {
      const BufferArg& a = func.args[i];
      DataType store = a.dtype.element_of();
      std::string name = "a" + std::to_string(i);
      bufs_[a.var.get()] = BufInfo{name, store};
      Line(std::string(StorageCType(store)) + "* " + name + " = (" +
           StorageCType(store) + "*)bufs[" + std::to_string(i) + "];");
      Line("(void)" + name + ";");
    }
    EmitStmt(body);
    return body_;
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

 private:
  struct BufInfo {
    std::string name;
    DataType dtype;  // scalar storage dtype (element_of)
  };
  struct VarInfo {
    std::string name;
    bool is_float = false;
  };

  void Fail(const std::string& why) {
    if (ok_) {
      ok_ = false;
      error_ = why;
    }
  }

  void Line(const std::string& s) {
    body_.append(static_cast<size_t>(indent_) * 2, ' ');
    body_ += s;
    body_ += '\n';
  }

  std::string NewTemp() { return "t" + std::to_string(temp_counter_++); }

  std::string VarName(const VarNode* v) {
    auto it = var_names_.find(v);
    if (it != var_names_.end()) {
      return it->second;
    }
    std::string name = SanitizeIdent(v->name) + "_" + std::to_string(temp_counter_++);
    var_names_[v] = name;
    return name;
  }

  // --- value-model conversions (interp Value::AsF / AsI / AsBool) ---------------
  static std::string AsF(const CV& v) {
    return v.is_float ? v.s : "(double)" + v.s;
  }
  static std::string AsI(const CV& v) {
    return v.is_float ? "(int64_t)" + v.s : v.s;
  }
  static std::string AsBool(const CV& v) { return "(" + v.s + " != 0)"; }

  // ReadElem: value read as the buffer's storage type; float buffers yield floats.
  CV ReadElem(const BufInfo& buf, const std::string& idx) {
    if (buf.dtype.is_float()) {
      return {"(double)" + buf.name + "[" + idx + "]", true};
    }
    return {"(int64_t)" + buf.name + "[" + idx + "]", false};
  }

  // WriteElem as a statement: float stores round f16 through the RNE grid, int
  // stores truncate float values through int64 first (interp AsI), then narrow.
  void WriteElem(const BufInfo& buf, const std::string& idx, const CV& val) {
    if (buf.dtype.is_float()) {
      std::string f = "(float)(" + AsF(val) + ")";
      if (buf.dtype.bits() == 16) {
        f = "tn_qf16(" + f + ")";
      }
      Line(buf.name + "[" + idx + "] = " + f + ";");
      return;
    }
    Line(buf.name + "[" + idx + "] = (" + std::string(StorageCType(buf.dtype)) +
         ")(" + AsI(val) + ");");
  }

  CV EmitImmInt(int64_t v) {
    if (v == INT64_MIN) {
      return {"(-INT64_C(9223372036854775807) - 1)", false};
    }
    return {"INT64_C(" + std::to_string(v) + ")", false};
  }

  CV EmitImmFloat(double v) {
    if (v != v) {
      return {"(0.0 / 0.0)", true};  // NaN
    }
    if (v > 1.7976931348623157e308) {
      return {"(1.0 / 0.0)", true};
    }
    if (v < -1.7976931348623157e308) {
      return {"(-1.0 / 0.0)", true};
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);  // hexfloat: exact double round-trip
    return {std::string(buf), true};
  }

  // Evaluates `e` at the current lane context (lane_: "0" in scalar context, the
  // per-lane loop variable inside vector stores). Mirrors Interp::Eval(e, lane).
  CV EmitExpr(const Expr& e) {
    if (!ok_) {
      return {"0", false};
    }
    switch (e->kind) {
      case ExprKind::kIntImm:
        return EmitImmInt(static_cast<const IntImmNode*>(e.get())->value);
      case ExprKind::kFloatImm:
        return EmitImmFloat(static_cast<const FloatImmNode*>(e.get())->value);
      case ExprKind::kStringImm:
        return {"INT64_C(0)", false};
      case ExprKind::kVar: {
        const auto* v = static_cast<const VarNode*>(e.get());
        auto it = env_.find(v);
        if (it == env_.end()) {
          Fail("unbound variable " + v->name);
          return {"0", false};
        }
        return {it->second.name, it->second.is_float};
      }
      case ExprKind::kRamp: {
        const auto* n = static_cast<const RampNode*>(e.get());
        CV base = EmitExpr(n->base);
        CV stride = EmitExpr(n->stride);
        return {"(" + AsI(base) + " + (int64_t)" + lane_ + " * " + AsI(stride) + ")",
                false};
      }
      case ExprKind::kBroadcast:
        return EmitExpr(static_cast<const BroadcastNode*>(e.get())->value);
      case ExprKind::kCast:
        return EmitCast(static_cast<const CastNode*>(e.get()));
      case ExprKind::kNot: {
        CV a = EmitExpr(static_cast<const NotNode*>(e.get())->a);
        return {"(int64_t)(" + AsBool(a) + " ? 0 : 1)", false};
      }
      case ExprKind::kSelect: {
        const auto* n = static_cast<const SelectNode*>(e.get());
        return EmitConditional(n->condition, n->true_value, n->false_value);
      }
      case ExprKind::kLoad:
        return EmitLoad(static_cast<const LoadNode*>(e.get()));
      case ExprKind::kLet: {
        const auto* n = static_cast<const LetNode*>(e.get());
        CV val = EmitExpr(n->value);
        std::string name = VarName(n->var.get());
        auto saved = SaveVar(n->var.get());
        env_[n->var.get()] = VarInfo{name, val.is_float};
        CV body = EmitExpr(n->body);
        RestoreVar(n->var.get(), saved);
        std::string type = val.is_float ? "double" : "int64_t";
        return {"({ " + type + " " + name + " = " + val.s + "; " + body.s + "; })",
                body.is_float};
      }
      case ExprKind::kCall:
        return EmitCall(static_cast<const CallNode*>(e.get()));
      default: {
        const auto* b = dynamic_cast<const BinaryNode*>(e.get());
        if (b == nullptr) {
          Fail("codegen cannot evaluate " + ToString(e));
          return {"0", false};
        }
        return EmitBinary(e->kind, EmitExpr(b->a), EmitExpr(b->b));
      }
    }
  }

  CV EmitCast(const CastNode* n) {
    CV v = EmitExpr(n->value);
    if (n->dtype.is_float()) {
      if (n->dtype.bits() == 16) {
        return {"(double)tn_qf16((float)(" + AsF(v) + "))", true};
      }
      return {"(" + AsF(v) + ")", true};
    }
    std::string i = AsI(v);
    if (n->dtype.bits() < 64 && !n->dtype.is_handle()) {
      return {"tn_wrap(" + i + ", " + std::to_string(n->dtype.bits()) + ", " +
                  (n->dtype.is_int() ? "1" : "0") + ")",
              false};
    }
    return {"(" + i + ")", false};
  }

  // Select and if_then_else: lazy branch evaluation via the C conditional operator.
  // Mixed int/float arms promote to double, matching the VM's static unification
  // (StaticTypeOf(t) || StaticTypeOf(f)).
  CV EmitConditional(const Expr& cond, const Expr& tval, const Expr& fval) {
    CV c = EmitExpr(cond);
    CV t = EmitExpr(tval);
    CV f = EmitExpr(fval);
    bool fl = t.is_float || f.is_float;
    std::string ts = fl ? AsF(t) : t.s;
    std::string fs = fl ? AsF(f) : f.s;
    return {"(" + AsBool(c) + " ? " + ts + " : " + fs + ")", fl};
  }

  CV EmitLoad(const LoadNode* n) {
    auto it = bufs_.find(n->buffer_var.get());
    if (it == bufs_.end()) {
      Fail("unbound buffer " + n->buffer_var->name);
      return {"0", false};
    }
    const BufInfo& buf = it->second;
    if (n->dtype.is_float() != buf.dtype.is_float()) {
      // Same restriction as the VM compiler; keeps the static float/int model exact.
      Fail("load type mismatch on " + n->buffer_var->name);
      return {"0", false};
    }
    if (n->predicate != nullptr) {
      // Masked lanes yield a typed zero without evaluating the index (interp order:
      // predicate first, index only when live).
      CV p = EmitExpr(n->predicate);
      CV idx = EmitExpr(n->index);
      CV read = ReadElem(buf, AsI(idx));
      std::string zero = n->dtype.is_float() ? "0.0" : "INT64_C(0)";
      return {"(" + AsBool(p) + " ? " + read.s + " : " + zero + ")",
              buf.dtype.is_float()};
    }
    CV idx = EmitExpr(n->index);
    return ReadElem(buf, AsI(idx));
  }

  CV EmitBinary(ExprKind kind, const CV& a, const CV& b) {
    bool fl = a.is_float || b.is_float;
    auto arith = [&](const char* op) -> CV {
      if (fl) {
        return {"(" + AsF(a) + " " + op + " " + AsF(b) + ")", true};
      }
      return {"(" + a.s + " " + op + " " + b.s + ")", false};
    };
    auto cmp = [&](const char* op) -> CV {
      if (fl) {
        return {"(int64_t)(" + AsF(a) + " " + op + " " + AsF(b) + ")", false};
      }
      return {"(int64_t)(" + a.s + " " + op + " " + b.s + ")", false};
    };
    switch (kind) {
      case ExprKind::kAdd:
        return arith("+");
      case ExprKind::kSub:
        return arith("-");
      case ExprKind::kMul:
        return arith("*");
      case ExprKind::kDiv:
        if (fl) {
          return {"(" + AsF(a) + " / " + AsF(b) + ")", true};
        }
        return {"tn_floordiv(" + a.s + ", " + b.s + ")", false};
      case ExprKind::kMod:
        return {"tn_floormod(" + AsI(a) + ", " + AsI(b) + ")", false};
      case ExprKind::kMin:
        if (fl) {
          return {"tn_fmin(" + AsF(a) + ", " + AsF(b) + ")", true};
        }
        return {"tn_imin(" + a.s + ", " + b.s + ")", false};
      case ExprKind::kMax:
        if (fl) {
          return {"tn_fmax(" + AsF(a) + ", " + AsF(b) + ")", true};
        }
        return {"tn_imax(" + a.s + ", " + b.s + ")", false};
      case ExprKind::kEQ:
        return cmp("==");
      case ExprKind::kNE:
        return cmp("!=");
      case ExprKind::kLT:
        return cmp("<");
      case ExprKind::kLE:
        return cmp("<=");
      case ExprKind::kGT:
        return cmp(">");
      case ExprKind::kGE:
        return cmp(">=");
      case ExprKind::kAnd:
        // C && short-circuits where the interpreter evaluates both operands; the
        // operands are pure and non-trapping in valid programs, so evaluating
        // fewer of them cannot change any observable result.
        return {"(int64_t)(" + AsBool(a) + " && " + AsBool(b) + ")", false};
      case ExprKind::kOr:
        return {"(int64_t)(" + AsBool(a) + " || " + AsBool(b) + ")", false};
      default:
        Fail("bad binary kind");
        return {"0", false};
    }
  }

  CV EmitCall(const CallNode* n) {
    const std::string& name = n->name;
    if (name == "if_then_else") {
      return EmitConditional(n->args[0], n->args[1], n->args[2]);
    }
    UnaryMathFn fn;
    if (LookupUnaryMathFn(name, &fn)) {
      CV x = EmitExpr(n->args[0]);
      const char* cfn = nullptr;
      switch (fn) {
        case UnaryMathFn::kExp: cfn = "exp"; break;
        case UnaryMathFn::kLog: cfn = "log"; break;
        case UnaryMathFn::kSqrt: cfn = "sqrt"; break;
        case UnaryMathFn::kTanh: cfn = "tanh"; break;
        case UnaryMathFn::kSigmoid: cfn = "tn_sigmoid"; break;
      }
      return {std::string(cfn) + "(" + AsF(x) + ")", true};
    }
    if (name == "popcount") {
      CV x = EmitExpr(n->args[0]);
      return {"(int64_t)__builtin_popcountll((uint64_t)(" + AsI(x) + "))", false};
    }
    if (name == kSyncIntrin || name == kPushDepIntrin || name == kPopDepIntrin) {
      return {"INT64_C(0)", false};  // synchronization: no-op under serial execution
    }
    if (LookupTensorIntrin(name) != nullptr) {
      Fail("tensor intrinsic " + name + " outside statement position");
      return {"0", false};
    }
    Fail("unknown call " + name);
    return {"0", false};
  }

  // --- statements -----------------------------------------------------------------

  void EmitStmt(const Stmt& s) {
    if (s == nullptr || !ok_) {
      return;
    }
    switch (s->kind) {
      case StmtKind::kLetStmt: {
        const auto* n = static_cast<const LetStmtNode*>(s.get());
        CV val = EmitExpr(n->value);
        std::string name = VarName(n->var.get());
        Line("{");
        ++indent_;
        Line(std::string(val.is_float ? "double" : "int64_t") + " " + name + " = " +
             val.s + ";");
        auto saved = SaveVar(n->var.get());
        env_[n->var.get()] = VarInfo{name, val.is_float};
        EmitStmt(n->body);
        RestoreVar(n->var.get(), saved);
        --indent_;
        Line("}");
        break;
      }
      case StmtKind::kAttrStmt:
        EmitStmt(static_cast<const AttrStmtNode*>(s.get())->body);
        break;
      case StmtKind::kAssert: {
        const auto* n = static_cast<const AssertStmtNode*>(s.get());
        CV c = EmitExpr(n->condition);
        Line("if (!" + AsBool(c) + ") tn_assert_fail(\"assert failed: " +
             CEscape(n->message) + "\");");
        EmitStmt(n->body);
        break;
      }
      case StmtKind::kStore:
        EmitStore(static_cast<const StoreNode*>(s.get()));
        break;
      case StmtKind::kAllocate:
        EmitAllocate(static_cast<const AllocateNode*>(s.get()));
        break;
      case StmtKind::kFor: {
        const auto* n = static_cast<const ForNode*>(s.get());
        // All loop kinds run serially, like the interpreter: kParallel/kVThread/
        // kThreadBinding are data-parallel by construction, and any kVectorized
        // loop still present is one the VectorizeLoop pass could not prove.
        CV min_v = EmitExpr(n->min);
        CV ext = EmitExpr(n->extent);
        std::string tmin = NewTemp();
        std::string text = NewTemp();
        std::string lv = VarName(n->loop_var.get());
        Line("{");
        ++indent_;
        Line("int64_t " + tmin + " = " + AsI(min_v) + ";");
        Line("int64_t " + text + " = " + AsI(ext) + ";");
        Line("for (int64_t " + lv + " = " + tmin + "; " + lv + " < " + tmin + " + " +
             text + "; ++" + lv + ") {");
        ++indent_;
        auto saved = SaveVar(n->loop_var.get());
        env_[n->loop_var.get()] = VarInfo{lv, false};
        EmitStmt(n->body);
        RestoreVar(n->loop_var.get(), saved);
        --indent_;
        Line("}");
        --indent_;
        Line("}");
        break;
      }
      case StmtKind::kIfThenElse: {
        const auto* n = static_cast<const IfThenElseNode*>(s.get());
        CV c = EmitExpr(n->condition);
        Line("if " + AsBool(c) + " {");
        ++indent_;
        EmitStmt(n->then_case);
        --indent_;
        if (n->else_case != nullptr) {
          Line("} else {");
          ++indent_;
          EmitStmt(n->else_case);
          --indent_;
        }
        Line("}");
        break;
      }
      case StmtKind::kSeq: {
        const auto* n = static_cast<const SeqStmtNode*>(s.get());
        for (const Stmt& st : n->seq) {
          EmitStmt(st);
        }
        break;
      }
      case StmtKind::kEvaluate:
        EmitEvaluate(static_cast<const EvaluateNode*>(s.get())->value);
        break;
    }
  }

  void EmitStore(const StoreNode* n) {
    auto it = bufs_.find(n->buffer_var.get());
    if (it == bufs_.end()) {
      Fail("unbound buffer " + n->buffer_var->name);
      return;
    }
    const BufInfo& buf = it->second;
    if (n->value->dtype.is_float() != buf.dtype.is_float()) {
      Fail("store type mismatch on " + n->buffer_var->name);
      return;
    }
    int lanes = std::max(n->value->dtype.lanes(), n->index->dtype.lanes());
    if (lanes > 1) {
      // Vector store: per lane, predicate -> index -> value, exactly the scalar
      // order applied lane by lane (interp reference semantics).
      std::string lv = "l" + std::to_string(temp_counter_++);
      Line("for (int64_t " + lv + " = 0; " + lv + " < " + std::to_string(lanes) +
           "; ++" + lv + ") {");
      ++indent_;
      std::string saved_lane = lane_;
      lane_ = lv;
      int close_braces = 1;
      if (n->predicate != nullptr) {
        CV p = EmitExpr(n->predicate);
        Line("if " + AsBool(p) + " {");
        ++indent_;
        ++close_braces;
      }
      CV idx = EmitExpr(n->index);
      std::string ti = NewTemp();
      Line("int64_t " + ti + " = " + AsI(idx) + ";");
      WriteElem(buf, ti, EmitExpr(n->value));
      lane_ = saved_lane;
      for (int i = 0; i < close_braces; ++i) {
        --indent_;
        Line("}");
      }
      return;
    }
    int close_braces = 1;
    Line("{");
    ++indent_;
    if (n->predicate != nullptr) {
      CV p = EmitExpr(n->predicate);
      Line("if " + AsBool(p) + " {");
      ++indent_;
      ++close_braces;
    }
    CV idx = EmitExpr(n->index);
    std::string ti = NewTemp();
    Line("int64_t " + ti + " = " + AsI(idx) + ";");
    WriteElem(buf, ti, EmitExpr(n->value));
    for (int i = 0; i < close_braces; ++i) {
      --indent_;
      Line("}");
    }
  }

  void EmitAllocate(const AllocateNode* n) {
    // lanes > 1 allocates widened scalar storage, exactly like the interpreter;
    // calloc matches the interpreter's zero-initialized owned storage.
    DataType store = n->dtype.element_of();
    std::string name = VarName(n->buffer_var.get());
    std::string sz = NewTemp();
    Line("{");
    ++indent_;
    Line("int64_t " + sz + " = " + std::to_string(n->dtype.lanes()) + ";");
    for (const Expr& e : n->extents) {
      CV v = EmitExpr(e);
      Line(sz + " *= " + AsI(v) + ";");
    }
    Line(std::string(StorageCType(store)) + "* " + name + " = (" +
         StorageCType(store) + "*)calloc((size_t)" + sz + ", sizeof(" +
         StorageCType(store) + "));");
    bool had = bufs_.count(n->buffer_var.get()) > 0;
    BufInfo saved_buf = had ? bufs_[n->buffer_var.get()] : BufInfo{};
    bufs_[n->buffer_var.get()] = BufInfo{name, store};
    EmitStmt(n->body);
    if (had) {
      bufs_[n->buffer_var.get()] = saved_buf;
    } else {
      bufs_.erase(n->buffer_var.get());
    }
    Line("free(" + name + ");");
    --indent_;
    Line("}");
  }

  void EmitEvaluate(const Expr& e) {
    if (e->kind == ExprKind::kCall) {
      const auto* call = static_cast<const CallNode*>(e.get());
      if (call->name == kSyncIntrin || call->name == kPushDepIntrin ||
          call->name == kPopDepIntrin) {
        return;  // synchronization: no-op under serial execution
      }
      if (LookupTensorIntrin(call->name) != nullptr) {
        EmitTensorIntrin(call);
        return;
      }
    }
    CV v = EmitExpr(e);
    Line("(void)(" + v.s + ");");
  }

  // Generic strided-loop execution of a tensor intrinsic over the shared
  // name -> category table, mirroring Interp::ExecTensorIntrin.
  void EmitTensorIntrin(const CallNode* n) {
    const TensorIntrinInfo* info = LookupTensorIntrin(n->name);
    int num_buffers = info->num_buffers;
    int total = static_cast<int>(n->args.size());
    int nt;
    if (!DecodeTensorIntrinArity(num_buffers, total, &nt)) {
      Fail("bad intrinsic arity for " + n->name);
      return;
    }
    struct Access {
      const BufInfo* buf;
      std::string base;
      std::vector<std::string> strides;
    };
    Line("{");
    ++indent_;
    std::vector<Access> acc;
    int pos = 0;
    for (int b = 0; b < num_buffers; ++b) {
      Access a;
      if (n->args[static_cast<size_t>(pos)]->kind != ExprKind::kVar) {
        Fail("tensor intrinsic expects a buffer handle");
        --indent_;
        Line("}");
        return;
      }
      const auto* v =
          static_cast<const VarNode*>(n->args[static_cast<size_t>(pos)].get());
      auto it = bufs_.find(v);
      if (it == bufs_.end()) {
        Fail("unbound buffer " + v->name);
        --indent_;
        Line("}");
        return;
      }
      a.buf = &it->second;
      ++pos;
      a.base = NewTemp();
      Line("int64_t " + a.base + " = " + AsI(EmitExpr(n->args[static_cast<size_t>(pos++)])) + ";");
      for (int d = 0; d < nt; ++d) {
        std::string st = NewTemp();
        Line("int64_t " + st + " = " + AsI(EmitExpr(n->args[static_cast<size_t>(pos++)])) + ";");
        a.strides.push_back(st);
      }
      acc.push_back(std::move(a));
    }
    std::vector<std::string> extents;
    for (int d = 0; d < nt; ++d) {
      std::string ex = NewTemp();
      Line("int64_t " + ex + " = " + AsI(EmitExpr(n->args[static_cast<size_t>(pos++)])) + ";");
      extents.push_back(ex);
    }
    std::vector<std::string> ivs;
    for (int d = 0; d < nt; ++d) {
      std::string iv = "i" + std::to_string(temp_counter_++);
      Line("for (int64_t " + iv + " = 0; " + iv + " < " + extents[static_cast<size_t>(d)] +
           "; ++" + iv + ") {");
      ++indent_;
      ivs.push_back(iv);
    }
    auto offset = [&](const Access& a) {
      std::string off = a.base;
      for (int d = 0; d < nt; ++d) {
        off += " + " + ivs[static_cast<size_t>(d)] + " * " + a.strides[static_cast<size_t>(d)];
      }
      return "(" + off + ")";
    };
    using Category = TensorIntrinCategory;
    switch (info->category) {
      case Category::kFill: {
        CV zero = acc[0].buf->dtype.is_float() ? CV{"0.0", true} : CV{"INT64_C(0)", false};
        WriteElem(*acc[0].buf, offset(acc[0]), zero);
        break;
      }
      case Category::kCopy:
        WriteElem(*acc[0].buf, offset(acc[0]), ReadElem(*acc[1].buf, offset(acc[1])));
        break;
      case Category::kMac: {
        CV out = ReadElem(*acc[0].buf, offset(acc[0]));
        CV a = ReadElem(*acc[1].buf, offset(acc[1]));
        CV b = ReadElem(*acc[2].buf, offset(acc[2]));
        bool fl = out.is_float || a.is_float || b.is_float;
        CV r;
        if (fl) {
          r = {"(" + AsF(out) + " + " + AsF(a) + " * " + AsF(b) + ")", true};
        } else {
          r = {"(" + out.s + " + " + a.s + " * " + b.s + ")", false};
        }
        WriteElem(*acc[0].buf, offset(acc[0]), r);
        break;
      }
    }
    for (int d = 0; d < nt; ++d) {
      --indent_;
      Line("}");
    }
    --indent_;
    Line("}");
  }

  // --- scoped binding helpers -------------------------------------------------------
  std::pair<bool, VarInfo> SaveVar(const VarNode* v) {
    auto it = env_.find(v);
    if (it == env_.end()) {
      return {false, VarInfo{}};
    }
    return {true, it->second};
  }
  void RestoreVar(const VarNode* v, const std::pair<bool, VarInfo>& saved) {
    if (saved.first) {
      env_[v] = saved.second;
    } else {
      env_.erase(v);
    }
  }

  bool ok_ = true;
  std::string error_;
  std::string body_;
  int indent_ = 1;
  int temp_counter_ = 0;
  std::string lane_ = "0";
  std::unordered_map<const VarNode*, VarInfo> env_;
  std::unordered_map<const VarNode*, BufInfo> bufs_;
  std::unordered_map<const VarNode*, std::string> var_names_;
};

}  // namespace

const std::string& Preamble() {
  static const std::string preamble = R"PRE(#include <stdint.h>
#include <stdlib.h>
#include <stdio.h>
#include <math.h>

/* Value-model helpers mirroring the reference interpreter (src/interp) bit for bit. */

static inline int64_t tn_floordiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

static inline int64_t tn_floormod(int64_t a, int64_t b) {
  return a - tn_floordiv(a, b) * b;
}

/* Narrow-cast wrap: ((i mod 2^bits) + 2^bits) mod 2^bits, re-signed for int types. */
static inline int64_t tn_wrap(int64_t i, int bits, int sgn) {
  int64_t mod = (int64_t)1 << bits;
  i = ((i % mod) + mod) % mod;
  if (sgn && i >= (mod >> 1)) i -= mod;
  return i;
}

/* std::min / std::max semantics: min(a,b) = b<a ? b : a; max(a,b) = a<b ? b : a. */
static inline double tn_fmin(double a, double b) { return b < a ? b : a; }
static inline double tn_fmax(double a, double b) { return a < b ? b : a; }
static inline int64_t tn_imin(int64_t a, int64_t b) { return b < a ? b : a; }
static inline int64_t tn_imax(int64_t a, int64_t b) { return a < b ? b : a; }

static inline double tn_sigmoid(double x) { return 1.0 / (1.0 + exp(-x)); }

/* IEEE binary16 round-to-nearest-even, a C port of src/support/float16.h. Union
   type punning is well-defined in C11 (unlike C++), so no memcpy is needed. */
static inline uint16_t tn_f32_to_h(float value) {
  union { float f; uint32_t u; } cv;
  cv.f = value;
  uint32_t f = cv.u;
  uint16_t sign = (uint16_t)((f >> 16) & 0x8000u);
  uint32_t exp = (f >> 23) & 0xffu;
  uint32_t mant = f & 0x7fffffu;
  if (exp == 0xffu) {
    if (mant == 0) return (uint16_t)(sign | 0x7c00u);
    return (uint16_t)(sign | 0x7c00u | 0x200u | (mant >> 13));
  }
  int e = (int)exp - 127 + 15;
  if (e >= 0x1f) return (uint16_t)(sign | 0x7c00u);
  if (e <= 0) {
    if (e < -10) return sign;
    mant |= 0x800000u;
    uint32_t shift = (uint32_t)(14 - e);
    uint32_t half_mant = mant >> shift;
    uint32_t rem = mant & ((1u << shift) - 1u);
    uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half_mant & 1u))) ++half_mant;
    return (uint16_t)(sign | half_mant);
  }
  uint16_t bits = (uint16_t)(sign | ((uint32_t)e << 10) | (mant >> 13));
  uint32_t rem = mant & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (bits & 1u))) ++bits;
  return bits;
}

static inline float tn_h_to_f32(uint16_t h) {
  uint32_t sign = (uint32_t)(h & 0x8000u) << 16;
  uint32_t exp = (h >> 10) & 0x1fu;
  uint32_t mant = h & 0x3ffu;
  uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;
    } else {
      int e = 0;
      uint32_t m = mant;
      while (!(m & 0x400u)) {
        m <<= 1;
        ++e;
      }
      f = sign | ((uint32_t)(127 - 15 + 1 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1fu) {
    f = sign | 0x7f800000u | (mant << 13);
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  union { uint32_t u; float f; } cv;
  cv.u = f;
  return cv.f;
}

static inline float tn_qf16(float v) { return tn_h_to_f32(tn_f32_to_h(v)); }

static void tn_assert_fail(const char* msg) {
  fprintf(stderr, "%s\n", msg);
  abort();
}

)PRE";
  return preamble;
}

CSource EmitC(const LoweredFunc& func, const LoopSpecializeOptions& spec) {
  CSource src;
  Stmt body = func.body;
  if (body == nullptr) {
    src.error = "null body";
    return src;
  }
  // The exact preprocessing pipeline the VM compiler applies (CompileToProgram):
  // each pass is bitwise-neutral, so the three tiers execute the same program.
  if (HasThreadIdxBinding(body)) {
    body = SerializeThreadBlocks(body);
  }
  body = VectorizeLoop(body);
  if (spec.unroll_limit > 0 || spec.hoist_invariants) {
    body = SpecializeLoops(body, spec);
  }
  body = Simplify(body);

  CEmitter emitter;
  std::string fn_body = emitter.EmitFunc(func, body);
  if (!emitter.ok()) {
    src.error = emitter.error();
    return src;
  }
  // Content-addressed symbol: stable for identical (name, emitted body) pairs, so
  // identical kernels dedupe inside a module and across cache entries.
  src.symbol =
      "tn_" + SanitizeIdent(func.name) + "_" + HexU64(Fnv1a(func.name + "\n" + fn_body));
  src.code = "void " + src.symbol + "(void** bufs) {\n" + fn_body + "}\n";
  src.ok = true;
  return src;
}

}  // namespace codegen
}  // namespace tvmcpp
