// Quickstart: the paper's Section 2 end-user flow in C++.
//
// Build a small model graph, compile it for a (simulated) GPU target, set inputs, run
// inference on the reference interpreter, and read back the output — the C++ analogue of:
//
//   graph, params = t.frontend.from_keras(keras_model)
//   graph, lib, params = t.compiler.build(graph, target, params)
//   module.set_input(**params); module.run(data=data_array); module.get_output(0, out)
#include <cstdio>

#include "src/graph/executor.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"

using namespace tvmcpp;

int main() {
  // A two-layer convolutional network, like the paper's Figure 3.
  graph::Graph g;
  int data = g.AddInput("data", {1, 3, 32, 32});
  int w1 = g.AddConst("w1", {16, 3, 3, 3});
  int w2 = g.AddConst("w2", {32, 16, 3, 3});
  int fc_w = g.AddConst("fc_w", {10, 32 * 8 * 8});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int p1 = g.AddOp("max_pool2d", "pool1", {r1}, {{"kernel", 2}, {"stride", 2}});
  int c2 = g.AddOp("conv2d", "conv2", {p1, w2}, {{"stride", 1}, {"pad", 1}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  int p2 = g.AddOp("max_pool2d", "pool2", {r2}, {{"kernel", 2}, {"stride", 2}});
  int flat = g.AddOp("flatten", "flatten", {p2});
  int fc = g.AddOp("dense", "dense", {flat, fc_w});
  int prob = g.AddOp("softmax", "softmax", {fc});
  g.outputs = {prob};

  // Compile: graph-level fusion + per-operator schedules for the target.
  Target target = Target::TitanX();
  graph::GraphExecutor module(g, target, {});
  std::printf("compiled %d fused kernels for target '%s'\n", module.num_kernels(),
              target.name.c_str());
  std::printf("static memory plan: %lld bytes (vs %lld unplanned)\n",
              static_cast<long long>(module.memory_plan().planned_bytes),
              static_cast<long long>(module.memory_plan().unplanned_bytes));

  // Deploy: bind inputs/params and run.
  module.SetInput("data", NDArray::Random({1, 3, 32, 32}, DataType::Float32(), 1));
  module.SetParam("w1", NDArray::Random({16, 3, 3, 3}, DataType::Float32(), 2));
  module.SetParam("w2", NDArray::Random({32, 16, 3, 3}, DataType::Float32(), 3));
  module.SetParam("fc_w", NDArray::Random({10, 32 * 8 * 8}, DataType::Float32(), 4));
  module.Run();

  NDArray out = module.GetOutput(0);
  std::printf("class probabilities:");
  float total = 0;
  for (int i = 0; i < 10; ++i) {
    std::printf(" %.3f", out.Data<float>()[i]);
    total += out.Data<float>()[i];
  }
  std::printf("\n(sum = %.3f)\n", total);
  std::printf("estimated latency on %s: %.3f ms\n", target.name.c_str(),
              module.EstimateSeconds() * 1e3);
  return 0;
}
