// Auto-tuning a single conv2d operator (Section 5's flow): declare the workload, explore
// the schedule space with the ML-guided optimizer, and compare the tuned kernel against
// the untuned default and a random-search baseline.
#include <cstdio>

#include "src/autotune/tuner.h"
#include "src/runtime/rpc.h"
#include "src/runtime/target.h"

using namespace tvmcpp;
using namespace tvmcpp::autotune;

int main() {
  // ResNet-18's C7 layer (Table 2): 28x28, 128 -> 256 channels, 3x3 stride 2.
  topi::OpWorkload wl;
  wl.kind = "conv2d";
  wl.n = 1;
  wl.h = 28;
  wl.w = 28;
  wl.ic = 128;
  wl.oc = 256;
  wl.k = 3;
  wl.stride = 2;
  wl.pad = 1;
  Target target = Target::TitanX();

  TuningTask task(wl, target, /*seed=*/42);
  std::printf("workload %s\n", wl.Key().c_str());
  std::printf("schedule space size: %lld configs\n", static_cast<long long>(task.size()));

  // Simulated RPC device cluster (Section 5.4): four GPU workers measure in parallel.
  DevicePool pool(4);
  for (int i = 0; i < 4; ++i) {
    pool.Register(DeviceWorker(target, [&task](const MeasureRequest& req) {
      MeasureResult r;
      r.seconds = task.Measure(*static_cast<const int64_t*>(req.payload));
      return r;
    }));
  }

  TuneOptions opt;
  opt.num_trials = 128;
  opt.batch_size = 16;
  opt.pool = &pool;
  TuneResult ml = Tune(&task, TunerKind::kMlBased, opt);
  TuneResult rnd = Tune(&task, TunerKind::kRandom, opt);

  topi::ConfigSpace space = task.space();
  double default_s = task.TrueCost(space.IndexOf(topi::DefaultConfig(space)));
  std::printf("\nuntuned default:     %8.3f ms\n", default_s * 1e3);
  std::printf("random search (128): %8.3f ms\n", task.TrueCost(rnd.best_config) * 1e3);
  std::printf("ML-based (128):      %8.3f ms  <- the paper's optimizer\n",
              task.TrueCost(ml.best_config) * 1e3);
  std::printf("\nbest config found:\n");
  for (const auto& [knob, value] : space.At(ml.best_config)) {
    std::printf("  %-12s = %lld\n", knob.c_str(), static_cast<long long>(value));
  }
  std::printf("\nconvergence (best ms after N trials):\n  N:    ");
  for (size_t i = 15; i < ml.history.size(); i += 16) {
    std::printf("%7zu", i + 1);
  }
  std::printf("\n  ML:   ");
  for (size_t i = 15; i < ml.history.size(); i += 16) {
    std::printf("%7.3f", ml.history[i].best_seconds * 1e3);
  }
  std::printf("\n  rand: ");
  for (size_t i = 15; i < rnd.history.size(); i += 16) {
    std::printf("%7.3f", rnd.history[i].best_seconds * 1e3);
  }
  std::printf("\n");
  return 0;
}
