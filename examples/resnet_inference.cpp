// End-to-end model deployment: compile ResNet-18 for two targets, inspect fusion and
// memory planning, run real inference on a small input, and compare estimated latencies
// (the Section 6 end-to-end evaluation flow in miniature).
#include <cstdio>

#include "src/frontend/models.h"
#include "src/graph/executor.h"

using namespace tvmcpp;

int main() {
  // Small image so the reference interpreter finishes quickly; the compilation flow and
  // kernel structure are identical to the 224x224 benchmark configuration.
  frontend::Model model = frontend::ResNet18(/*batch=*/1, /*image_size=*/32);
  std::printf("ResNet-18 graph: %d nodes\n", model.graph.num_nodes());

  for (const Target& target : {Target::TitanX(), Target::ArmA53()}) {
    graph::CompileOptions fused_opts;
    graph::CompileOptions unfused_opts;
    unfused_opts.enable_fusion = false;
    graph::GraphExecutor fused(model.graph, target, fused_opts);
    graph::GraphExecutor unfused(model.graph, target, unfused_opts);
    std::printf("\ntarget %s:\n", target.name.c_str());
    std::printf("  kernels: %d fused vs %d unfused\n", fused.num_kernels(),
                unfused.num_kernels());
    std::printf("  memory:  %.2f MB planned vs %.2f MB unplanned\n",
                fused.memory_plan().planned_bytes / 1e6,
                fused.memory_plan().unplanned_bytes / 1e6);
    std::printf("  latency: %.3f ms fused vs %.3f ms unfused (estimated)\n",
                fused.EstimateSeconds() * 1e3, unfused.EstimateSeconds() * 1e3);

    if (target.kind == TargetKind::kCpu) {
      // Real inference on the interpreter.
      fused.SetInput("data", NDArray::Random(model.input_shape, DataType::Float32(), 5));
      for (const auto& [name, value] : model.params) {
        fused.SetParam(name, value);
      }
      fused.Run();
      NDArray out = fused.GetOutput(0);
      float best = -1;
      int best_class = -1;
      for (int i = 0; i < 1000; ++i) {
        if (out.Data<float>()[i] > best) {
          best = out.Data<float>()[i];
          best_class = i;
        }
      }
      std::printf("  inference ran: top class %d (p=%.4f)\n", best_class, best);
    }
  }
  return 0;
}
