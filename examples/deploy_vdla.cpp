// Targeting the VDLA accelerator (Section 6.4): build the Figure 5 schedule — tiling,
// on-chip buffer staging through special memory scopes, tensorization onto the 16x16
// GEMM unit, and virtual threads for latency hiding — then run the DAE pipeline
// simulator and verify numerics against the host interpreter.
#include <cstdio>
#include <vector>

#include "src/interp/interp.h"
#include "src/lower/lower.h"
#include "src/runtime/target.h"
#include "src/schedule/schedule.h"
#include "src/te/tensor.h"
#include "src/vdla/vdla.h"

using namespace tvmcpp;

LoweredFunc BuildMatmul(int n, int vthreads) {
  Tensor A = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "A");
  Tensor B = placeholder({make_int(n), make_int(n)}, DataType::Float32(), "B");
  IterVar rk = reduce_axis(Range(make_int(0), make_int(n)), "rk");
  Tensor C = compute({make_int(n), make_int(n)},
                     [&](const std::vector<Var>& i) {
                       return sum(A({i[0], rk->var}) * B({rk->var, i[1]}), {rk});
                     },
                     "C");
  // Output tiles of 128x128 live in the 128 kB accumulator; the reduction is chunked by
  // 32 so each DMA brings 128x32 input / 32x128 weight slices into the 32 kB SRAMs.
  const int tile = std::min(n, 128);
  Schedule s = create_schedule({C});
  Tensor CL = s->cache_write(C, "vdla.acc_buffer");
  Stage sc = (*s)[C];
  IterVar yo, xo, yi, xi;
  sc->tile(sc->leaf_iter_vars[0], sc->leaf_iter_vars[1], tile, tile, &yo, &xo, &yi, &xi);
  if (vthreads > 1 && (n / tile) % vthreads == 0) {
    IterVar vt, rest;
    sc->split(yo, (n / tile) / vthreads, &vt, &rest);
    sc->bind(vt, thread_axis("vthread"));
  }
  (*s)[CL]->compute_at(sc, xo);
  Stage scl = (*s)[CL];
  IterVar ci0 = scl->leaf_iter_vars[0], ci1 = scl->leaf_iter_vars[1];
  IterVar ko, ki;
  scl->split(scl->leaf_iter_vars[2], 32, &ko, &ki);
  // Block the 128x128x32 chunk into 16x16x16 tensorized steps.
  IterVar c0o, c0i, c1o, c1i, kio, kii;
  scl->split(ci0, 16, &c0o, &c0i);
  scl->split(ci1, 16, &c1o, &c1i);
  scl->split(ki, 16, &kio, &kii);
  scl->reorder({ko, c0o, c1o, kio, c0i, c1i, kii});
  IterVar ci0_t = c0i;
  (void)ci0_t;
  Tensor AL = s->cache_read(A, "vdla.inp_buffer", {CL.op()});
  Tensor BL = s->cache_read(B, "vdla.wgt_buffer", {CL.op()});
  (*s)[AL]->compute_at(scl, ko);
  (*s)[BL]->compute_at(scl, ko);
  Tensor w = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "w");
  Tensor x = placeholder({make_int(16), make_int(16)}, DataType::Float32(), "x");
  IterVar k16 = reduce_axis(Range(make_int(0), make_int(16)), "k");
  Tensor y = compute({make_int(16), make_int(16)},
                     [&](const std::vector<Var>& i) {
                       return sum(w({i[0], k16->var}) * x({k16->var, i[1]}), {k16});
                     },
                     "gemm16");
  scl->tensorize(c0i, decl_tensor_intrin(y, kGemmIntrin, kFillZeroIntrin, kGemmIntrin));
  return Lower(s, {A, B, C}, "vdla_matmul");
}

int main() {
  const int n = 256;
  Target vdla = Target::Vdla();

  std::printf("matmul %dx%dx%d on VDLA (16x16 GEMM unit @ 200 MHz)\n\n", n, n, n);
  std::printf("%-28s %12s %12s %10s\n", "schedule", "cycles", "GOPS", "util");
  for (int vt : {1, 2, 4}) {
    LoweredFunc f = BuildMatmul(n, vt);
    VdlaRunStats stats = RunOnVdla(f, vdla);
    std::printf("%d virtual thread(s)%s %15.0f %12.2f %9.1f%%\n", vt,
                vt == 1 ? "          " : "          ", stats.cycles,
                stats.GopsPerSecond(vdla), 100 * stats.ComputeUtilization());
  }

  // Functional check against the interpreter.
  LoweredFunc f = BuildMatmul(64, 2);
  std::vector<float> a(64 * 64), b(64 * 64), c(64 * 64);
  for (int i = 0; i < 64 * 64; ++i) {
    a[i] = static_cast<float>(i % 7) - 3;
    b[i] = static_cast<float>(i % 5) - 2;
  }
  RunLowered(f, {{a.data(), DataType::Float32(), 64 * 64},
                 {b.data(), DataType::Float32(), 64 * 64},
                 {c.data(), DataType::Float32(), 64 * 64}});
  double err = 0;
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      float ref = 0;
      for (int k = 0; k < 64; ++k) {
        ref += a[i * 64 + k] * b[k * 64 + j];
      }
      err = std::max(err, static_cast<double>(std::abs(ref - c[i * 64 + j])));
    }
  }
  std::printf("\nnumerics vs reference: max abs err = %g (64x64 check)\n", err);
  return err < 1e-2 ? 0 : 1;
}
