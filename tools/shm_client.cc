// shm_client: operator tool for the shared-memory serving transport.
//
// Server mode — create the arena, register the built-in model zoo, serve:
//   shm_client --serve [--shm-name /tvmcpp_serve] [--duration-s 0]
//
// Client mode — attach to a running server's arena and submit requests:
//   shm_client --model chain [--shm-name /tvmcpp_serve] [--seed 1]
//              [--repeat 1] [--priority 0] [--deadline-ms -1] [--verify]
//   shm_client --list [--shm-name /tvmcpp_serve]
//
// The built-in models are deterministic (weights derived from fixed seeds), so
// --verify can recompute the expected result locally in the client process and
// check the bytes that crossed the arena bitwise. See docs/DEPLOYMENT.md for a
// copy-pasteable walkthrough.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/graph/executor.h"
#include "src/graph/graph.h"
#include "src/runtime/ndarray.h"
#include "src/runtime/target.h"
#include "src/serve/serve.h"
#include "src/serve/shm_client.h"
#include "src/serve/shm_server.h"

namespace {

using namespace tvmcpp;  // NOLINT: small tool binary

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

// The same deterministic conv chain the test suite and benches use: any
// client that knows the model name can recompute the oracle.
graph::Graph MakeConvChain() {
  graph::Graph g;
  int data = g.AddInput("data", {1, 4, 8, 8});
  int w1 = g.AddConst("w1", {8, 4, 3, 3});
  int w2 = g.AddConst("w2", {8, 8, 1, 1});
  int w3 = g.AddConst("w3", {8, 8, 1, 1});
  int w4 = g.AddConst("w4", {8, 8, 1, 1});
  int c1 = g.AddOp("conv2d", "conv1", {data, w1}, {{"stride", 1}, {"pad", 1}});
  int r1 = g.AddOp("relu", "relu1", {c1});
  int c2 = g.AddOp("conv2d", "conv2", {r1, w2}, {{"stride", 1}, {"pad", 0}});
  int r2 = g.AddOp("relu", "relu2", {c2});
  int c3 = g.AddOp("conv2d", "conv3", {r2, w3}, {{"stride", 1}, {"pad", 0}});
  int r3 = g.AddOp("relu", "relu3", {c3});
  g.outputs = {g.AddOp("conv2d", "conv4", {r3, w4}, {{"stride", 1}, {"pad", 0}})};
  return g;
}

constexpr uint64_t kWeightSeed = 7;

std::unordered_map<std::string, NDArray> ChainWeights() {
  std::unordered_map<std::string, NDArray> w;
  w["w1"] = NDArray::Random({8, 4, 3, 3}, DataType::Float32(), kWeightSeed + 1);
  w["w2"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), kWeightSeed + 2);
  w["w3"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), kWeightSeed + 3);
  w["w4"] = NDArray::Random({8, 8, 1, 1}, DataType::Float32(), kWeightSeed + 4);
  return w;
}

NDArray ChainInput(uint64_t seed) {
  return NDArray::Random({1, 4, 8, 8}, DataType::Float32(), 1000 + seed);
}

NDArray OracleRun(const NDArray& input) {
  graph::GraphExecutor exec(MakeConvChain(), Target::ArmA53(), {});
  for (const auto& kv : ChainWeights()) exec.SetParam(kv.first, kv.second);
  exec.SetInput("data", input);
  exec.Run();
  return exec.GetOutput(0).Copy();
}

uint64_t Checksum(const NDArray& t) {
  // FNV-1a over the raw bytes: stable across processes for bitwise comparison.
  const char* p = t.Data<char>();
  uint64_t h = 1469598103934665603ull;
  for (int64_t i = 0; i < t.ByteSize(); ++i) {
    h = (h ^ static_cast<unsigned char>(p[i])) * 1099511628211ull;
  }
  return h;
}

int Usage() {
  std::fprintf(stderr,
               "usage: shm_client --serve [--shm-name N] [--duration-s S]\n"
               "       shm_client --model M [--shm-name N] [--seed K] [--repeat R]\n"
               "                  [--priority P] [--deadline-ms D] [--timeout-ms T] [--verify]\n"
               "       shm_client --list [--shm-name N]\n");
  return 2;
}

int RunServer(const std::string& shm_name, int duration_s) {
  serve::InferenceServer server(serve::ServerOptions{});
  serve::ShmTransport::Options topts;
  topts.shm_name = shm_name;
  serve::ShmTransport transport(&server, topts);

  auto model = std::make_shared<graph::CompiledGraph>(MakeConvChain(), Target::ArmA53(),
                                                      graph::CompileOptions{});
  for (const auto& kv : ChainWeights()) model->SetParam(kv.first, kv.second);
  transport.RegisterModel("chain", model);

  std::printf("serving arena %s (model: chain), pid %d — Ctrl-C to stop\n",
              transport.arena()->name().c_str(), static_cast<int>(getpid()));
  std::fflush(stdout);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  int64_t stop_at =
      duration_s > 0 ? serve::ShmMonotonicMs() + 1000ll * duration_s : INT64_MAX;
  while (!g_stop && serve::ShmMonotonicMs() < stop_at) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  serve::ShmTransport::Stats ts = transport.stats();
  std::printf("shutting down: received=%lld completed=%lld bad_descriptors=%lld "
              "reclaimed=%lld zero_copy=%lld\n",
              static_cast<long long>(ts.received), static_cast<long long>(ts.completed),
              static_cast<long long>(ts.bad_descriptors),
              static_cast<long long>(ts.reclaimed_slots),
              static_cast<long long>(ts.zero_copy_requests));
  transport.Stop();
  server.Shutdown();
  return 0;
}

int RunClient(const std::string& shm_name, const std::string& model, uint64_t seed,
              int repeat, int priority, double deadline_ms, double timeout_ms,
              bool verify) {
  serve::Status st;
  auto client = serve::ShmClient::Connect(shm_name, &st);
  if (client == nullptr) {
    std::fprintf(stderr, "connect failed: %s\n", st.message.c_str());
    return 1;
  }
  // The arena is attachable before the server finishes RegisterModel: give
  // the directory entry a few seconds to appear before giving up.
  serve::ShmModelMeta mm;
  int64_t publish_deadline = serve::ShmMonotonicMs() + 5000;
  while (!client->GetModelMeta(model, &mm)) {
    if (serve::ShmMonotonicMs() >= publish_deadline) {
      std::fprintf(stderr, "model '%s' not published; available:", model.c_str());
      for (const std::string& n : client->ListModels()) {
        std::fprintf(stderr, " %s", n.c_str());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    usleep(10000);
  }

  serve::ShmClient::CallOptions copts;
  copts.priority = priority;
  copts.deadline_ms = deadline_ms;
  copts.timeout_ms = timeout_ms;
  int failures = 0;
  for (int r = 0; r < repeat; ++r) {
    uint64_t s = seed + static_cast<uint64_t>(r);
    NDArray in = client->AllocTensor(mm.inputs[0].shape, mm.inputs[0].dtype);
    if (!in.defined()) {
      std::fprintf(stderr, "arena exhausted allocating input\n");
      return 1;
    }
    in.CopyFrom(ChainInput(s));
    std::vector<NDArray> outs;
    serve::InferenceResponse meta;
    int64_t t0 = serve::ShmMonotonicMs();
    serve::Status call =
        client->Call(model, {{mm.inputs[0].name, in}}, &outs, copts, &meta);
    int64_t ms = serve::ShmMonotonicMs() - t0;
    if (!call.ok()) {
      std::printf("rep %d seed %llu: %s (%s) after %lld ms\n", r,
                  static_cast<unsigned long long>(s),
                  serve::StatusCodeName(call.code), call.message.c_str(),
                  static_cast<long long>(ms));
      ++failures;
      continue;
    }
    std::printf("rep %d seed %llu: ok in %lld ms (queue %.2f ms, run %.2f ms, "
                "batch %d, retries %d) checksum %016llx",
                r, static_cast<unsigned long long>(s), static_cast<long long>(ms),
                meta.queue_ms, meta.run_ms, meta.batch_size, meta.retries,
                static_cast<unsigned long long>(Checksum(outs[0])));
    if (verify && model == "chain") {
      NDArray expect = OracleRun(ChainInput(s));
      bool same = outs[0].ByteSize() == expect.ByteSize() &&
                  std::memcmp(outs[0].Data<char>(), expect.Data<char>(),
                              static_cast<size_t>(expect.ByteSize())) == 0;
      std::printf(" verify=%s", same ? "bitwise-ok" : "MISMATCH");
      if (!same) ++failures;
    }
    std::printf("\n");
  }
  if (client->staged_inputs() != 0) {
    std::printf("note: %lld inputs were staged (heap->arena copies)\n",
                static_cast<long long>(client->staged_inputs()));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string shm_name;  // "" → TVMCPP_SHM_NAME → /tvmcpp_serve
  std::string model;
  bool serve_mode = false, list_mode = false, verify = false;
  int duration_s = 0, repeat = 1, priority = 0;
  uint64_t seed = 1;
  double deadline_ms = -1, timeout_ms = 30000;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--serve") serve_mode = true;
    else if (a == "--list") list_mode = true;
    else if (a == "--verify") verify = true;
    else if (a == "--shm-name") shm_name = next("--shm-name");
    else if (a == "--model") model = next("--model");
    else if (a == "--duration-s") duration_s = std::atoi(next("--duration-s"));
    else if (a == "--seed") seed = std::strtoull(next("--seed"), nullptr, 10);
    else if (a == "--repeat") repeat = std::atoi(next("--repeat"));
    else if (a == "--priority") priority = std::atoi(next("--priority"));
    else if (a == "--deadline-ms") deadline_ms = std::atof(next("--deadline-ms"));
    else if (a == "--timeout-ms") timeout_ms = std::atof(next("--timeout-ms"));
    else return Usage();
  }

  if (serve_mode) return RunServer(shm_name, duration_s);
  if (list_mode) {
    serve::Status st;
    auto client = serve::ShmClient::Connect(shm_name, &st);
    if (client == nullptr) {
      std::fprintf(stderr, "connect failed: %s\n", st.message.c_str());
      return 1;
    }
    for (const std::string& n : client->ListModels()) std::printf("%s\n", n.c_str());
    return 0;
  }
  if (model.empty()) return Usage();
  return RunClient(shm_name, model, seed, repeat, priority, deadline_ms, timeout_ms,
                   verify);
}
