#!/usr/bin/env bash
# Tuning-loop smoke gate (CI): proves the persistent tuning cache round-trips
# between processes and that tuned schedules are never slower than untuned.
#
# Phase A runs bench_tune in reduced-size mode with real measurement: it tunes a
# dense, a conv2d, and a batch-4 dense workload, writes TVMCPP_TUNE_CACHE, and
# reports untuned-vs-tuned wall-clock rows. Phase B is a *fresh process* with
# TVMCPP_TUNE_CONSUME=1: no tuning, only loading the phase-A cache file and
# compiling through it — its tune_cache_stats row must show cache_hits > 0 (the
# cache one job wrote is actually consumed by another) and every speedup field in
# both phases must stay >= the floor (same sanity gate as tools/bench_smoke.sh:
# shared runners are noisy, so the claim is "tuned is not slower", not a perf bar).
#
# Usage: tune_smoke.sh [BUILD_DIR]
set -u

build_dir="${1:-build}"
if [ ! -x "$build_dir/bench_tune" ]; then
  echo "tune-smoke: $build_dir/bench_tune not found (build first)"
  exit 2
fi
tools_dir="$(dirname "$0")"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cache="$workdir/tune_cache.json"
json_a="$workdir/bench_tune_a.json"
json_b="$workdir/bench_tune_b.json"

echo "=== tune-smoke phase A: tune + write cache ==="
if ! TVMCPP_BENCH_SMOKE=1 TVMCPP_TUNE_CACHE="$cache" TVMCPP_BENCH_JSON="$json_a" \
    "$build_dir/bench_tune"; then
  echo "tune-smoke: phase A (tuning) failed"
  exit 1
fi
if [ ! -s "$cache" ]; then
  echo "tune-smoke: phase A did not write a cache file at $cache"
  exit 1
fi
entries="$(grep -c '"key"' "$cache" || true)"
if [ "$entries" -lt 3 ]; then
  echo "tune-smoke: expected >= 3 cache entries (dense, conv2d, dense batch-4), got $entries"
  exit 1
fi
echo "tune-smoke: cache holds $entries entries"

echo "=== tune-smoke phase B: fresh process consumes the cache ==="
if ! TVMCPP_BENCH_SMOKE=1 TVMCPP_TUNE_CACHE="$cache" TVMCPP_TUNE_CONSUME=1 \
    TVMCPP_BENCH_JSON="$json_b" "$build_dir/bench_tune"; then
  echo "tune-smoke: phase B (consume) failed"
  exit 1
fi
hits="$(grep '"bench": "tune_cache_stats"' "$json_b" |
  grep -oE '"cache_hits": *[0-9.eE+-]+' | sed 's/.*: *//')"
if [ -z "$hits" ] || ! awk -v h="$hits" 'BEGIN { exit !(h + 0 > 0) }'; then
  echo "tune-smoke: phase B cache_hits = '${hits:-missing}' (expected > 0): the cache written by phase A was not consulted"
  exit 1
fi
echo "tune-smoke: phase B consumed the cache ($hits hits)"

# tuned_variants proves the serving layer's lazily compiled batch variant found
# its own batch-N entry rather than inheriting the batch-1 schedule.
variants="$(grep '"bench": "tune_dense_batch4"' "$json_b" |
  grep -oE '"tuned_variants": *[0-9.eE+-]+' | sed 's/.*: *//')"
if [ -z "$variants" ] || ! awk -v v="$variants" 'BEGIN { exit !(v + 0 > 0) }'; then
  echo "tune-smoke: batch-4 serving variant did not pick up its cache entry (tuned_variants = '${variants:-missing}')"
  exit 1
fi

bash "$tools_dir/bench_smoke.sh" "$json_a" "$json_b" || exit 1
echo "tune-smoke: OK"
exit 0
