#!/usr/bin/env bash
# shm-smoke: end-to-end exercise of the shared-memory serving transport.
#
# Runs, against an existing build directory:
#   1. test_shm under TVMCPP_VM_STRICT=1 — the full shm suite, including the
#      fork-two-clients bitwise test and crash-reclamation tests. In CI this
#      runs on the ASan/UBSan build, so cross-process protocol bugs that
#      corrupt memory fail loudly here.
#   2. An operator-flow smoke with the shipped shm_client binary: a background
#      --serve process, then a client --verify run against it (the same
#      commands docs/DEPLOYMENT.md walks an operator through).
#   3. bench_shm in smoke mode to a scratch JSON, checking that the
#      serve_shm_2proc row was produced with zero copied outputs.
#
# Any abandoned /dev/shm/tvmcpp_* objects (ours are pid-unique; a crashed run
# leaks its object) are removed on exit so repeated runs on one host cannot
# accumulate arenas or collide.
#
# Usage: shm_smoke.sh [BUILD_DIR]   (default: build)
set -u

build_dir="${1:-build}"
for bin in test_shm shm_client bench_shm; do
  if [ ! -x "$build_dir/$bin" ]; then
    echo "shm_smoke: missing $build_dir/$bin (run cmake/build first)" >&2
    exit 2
  fi
done

server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null
  rm -f /dev/shm/tvmcpp_* 2>/dev/null
  rm -f /tmp/shm_smoke_bench.json
}
trap cleanup EXIT

echo "shm_smoke: [1/3] test_shm (strict mode)"
if ! TVMCPP_VM_STRICT=1 "$build_dir/test_shm"; then
  echo "SHM_SMOKE_FAIL: test_shm failed"
  exit 1
fi

echo "shm_smoke: [2/3] shm_client operator flow"
arena="/tvmcpp_smoke_$$"
"$build_dir/shm_client" --serve --shm-name "$arena" --duration-s 60 &
server_pid=$!
if ! "$build_dir/shm_client" --model chain --shm-name "$arena" \
     --seed 3 --repeat 3 --verify; then
  echo "SHM_SMOKE_FAIL: shm_client verify run failed"
  exit 1
fi
kill "$server_pid" 2>/dev/null
wait "$server_pid" 2>/dev/null
server_pid=""

echo "shm_smoke: [3/3] bench_shm (smoke mode)"
if ! TVMCPP_BENCH_SMOKE=1 TVMCPP_BENCH_JSON=/tmp/shm_smoke_bench.json \
     "$build_dir/bench_shm"; then
  echo "SHM_SMOKE_FAIL: bench_shm failed"
  exit 1
fi
if ! grep -q '"bench": "serve_shm_2proc".*"copied_outputs": 0' /tmp/shm_smoke_bench.json; then
  echo "SHM_SMOKE_FAIL: serve_shm_2proc row missing or response path copied tensors"
  cat /tmp/shm_smoke_bench.json
  exit 1
fi

echo "SHM_SMOKE_OK"
