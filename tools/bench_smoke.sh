#!/usr/bin/env bash
# bench-smoke gate: scans bench JSON-lines files for speedup fields and fails when
# any falls below the floor (default 1.0).
#
# This is a *sanity* gate, not a perf gate: CI runners are shared and noisy, so the
# only claim enforced is "the optimized path is not slower than the baseline it
# replaced". Benches run in reduced-size mode (TVMCPP_BENCH_SMOKE=1) so the whole
# step takes seconds. Checked fields are any JSON key containing "speedup"
# (vm_speedup's `speedup`, the vectorize rows' `vec_speedup`, bench_specialize's
# `spec_speedup`, bench_codegen's `native_speedup_vs_vm` /
# `native_speedup_vs_interp` / `cache_hit_speedup` — so the AOT native tier is
# gated to never run slower than the VM it sits above). Thread-scaling ratios
# (`scaling_4t`) never match the key pattern, and the serving benches (whose
# speedups depend on core count) are not part of the smoke run.
#
# Usage: bench_smoke.sh BENCH_JSON_FILE... [--floor X]
set -u

floor="1.0"
files=()
while [ "$#" -gt 0 ]; do
  case "$1" in
    --floor) floor="$2"; shift 2 ;;
    *) files+=("$1"); shift ;;
  esac
done

if [ "${#files[@]}" -eq 0 ]; then
  echo "usage: bench_smoke.sh BENCH_JSON_FILE... [--floor X]"
  exit 2
fi

fail=0
checked=0
for f in "${files[@]}"; do
  if [ ! -f "$f" ]; then
    echo "bench-smoke: missing $f"
    fail=1
    continue
  fi
  while IFS= read -r line; do
    bench="$(printf '%s' "$line" | grep -oE '"bench": "[^"]+"' | head -1 | sed 's/.*: "//; s/"//')"
    # Every key containing "speedup" in this line, with its value.
    while IFS= read -r kv; do
      [ -z "$kv" ] && continue
      key="$(printf '%s' "$kv" | sed 's/"\([^"]*\)".*/\1/')"
      val="$(printf '%s' "$kv" | sed 's/.*: *//')"
      checked=$((checked + 1))
      if ! awk -v v="$val" -v m="$floor" 'BEGIN { exit !(v + 0 >= m + 0) }'; then
        echo "bench-smoke: $bench $key = $val < $floor ($f)"
        fail=1
      fi
    done <<EOF_KV
$(printf '%s' "$line" | grep -oE '"[A-Za-z0-9_]*speedup[A-Za-z0-9_]*": *[0-9.eE+-]+')
EOF_KV
  done < "$f"
done

if [ "$checked" -eq 0 ]; then
  echo "bench-smoke: no speedup fields found in ${files[*]}"
  exit 1
fi
if [ "$fail" -eq 0 ]; then
  echo "bench-smoke: $checked speedup fields >= $floor"
fi
exit "$fail"
