#!/usr/bin/env bash
# docs-check: keeps docs/ARCHITECTURE.md in sync with the tree.
#
# Fails when (a) a src/ subdirectory is missing from the directory map, (b) the
# map documents a `src/<dir>/` that no longer exists, (c) a TVMCPP_* environment
# variable referenced in src/ or bench/ is missing from the environment-variable
# contract table, or (d) the table documents a variable no code references — so new
# knobs (e.g. the serving layer's batching controls) cannot ship undocumented.
# Registered as the `docs_check` CTest so the docs cannot silently rot.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
doc="$root/docs/ARCHITECTURE.md"
fail=0

if [ ! -f "$doc" ]; then
  echo "docs-check: missing $doc"
  exit 1
fi
if [ ! -f "$root/README.md" ]; then
  echo "docs-check: missing top-level README.md"
  exit 1
fi

# Every real src/ subdirectory must appear in the map as `src/<name>/`.
for d in "$root"/src/*/; do
  name="$(basename "$d")"
  if ! grep -q "\`src/$name/\`" "$doc"; then
    echo "docs-check: src/$name/ is missing from the directory map in docs/ARCHITECTURE.md"
    fail=1
  fi
done

# Every documented `src/<name>/` must exist on disk.
for name in $(grep -o '`src/[A-Za-z0-9_]*/`' "$doc" | sed 's/`//g; s|^src/||; s|/$||' | sort -u); do
  if [ ! -d "$root/src/$name" ]; then
    echo "docs-check: docs/ARCHITECTURE.md documents src/$name/ which does not exist"
    fail=1
  fi
done

# Environment-variable contract: every TVMCPP_* env var referenced in code (a quoted
# string literal — getenv call sites pass the name as a literal, possibly through a
# helper like EnvInt) must have a row in the docs table, and every documented row
# must still have a referencing call site. TVMCPP_SOURCE_DIR is a compile-time
# macro, not an env var, and appears unquoted — the quoted-literal grep skips it
# and the script scan filters it explicitly.
code_vars="$(grep -rhoE '"TVMCPP_[A-Z0-9_]+"' "$root/src" "$root/bench" 2>/dev/null \
             | tr -d '"' | sort -u)"
# Vars set or referenced by CI and the tools scripts (unquoted there: workflow env
# blocks, shell assignments) must be documented too — a knob the pipeline flips is
# part of the contract. This script is excluded (its grep patterns mention the
# TVMCPP_ prefix without naming real variables).
ci_vars="$(find "$root/tools" "$root/.github" -type f ! -name "$(basename "$0")" 2>/dev/null \
           -exec grep -hoE 'TVMCPP_[A-Z0-9_]+' {} + | grep -v '^TVMCPP_SOURCE_DIR$' | sort -u)"
all_vars="$(printf '%s\n%s\n' "$code_vars" "$ci_vars" | grep -v '^$' | sort -u)"
doc_vars="$(grep -oE '^\| `TVMCPP_[A-Z0-9_]+`' "$doc" | grep -oE 'TVMCPP_[A-Z0-9_]+' | sort -u)"
for var in $all_vars; do
  if ! printf '%s\n' "$doc_vars" | grep -qx "$var"; then
    echo "docs-check: env var $var is referenced in src/, bench/, tools/, or .github/ but missing from the env-var table in docs/ARCHITECTURE.md"
    fail=1
  fi
done
for var in $doc_vars; do
  if ! printf '%s\n' "$all_vars" | grep -qx "$var"; then
    echo "docs-check: docs/ARCHITECTURE.md documents env var $var which no code in src/, bench/, tools/, or .github/ references"
    fail=1
  fi
done

# Deployment guide: every env var an operator doc names must be a real knob
# (referenced by code/CI), and every TVMCPP_SHM_* transport knob must be
# documented in docs/DEPLOYMENT.md — the operator guide is the shm contract's
# home, so a new transport knob cannot ship without deployment docs.
deploy="$root/docs/DEPLOYMENT.md"
if [ ! -f "$deploy" ]; then
  echo "docs-check: missing docs/DEPLOYMENT.md (operator guide)"
  fail=1
else
  for var in $(grep -oE '`TVMCPP_[A-Z0-9_]+`' "$deploy" "$root/README.md" \
               | grep -oE 'TVMCPP_[A-Z0-9_]+' | sort -u); do
    if ! printf '%s\n' "$all_vars" | grep -qx "$var"; then
      echo "docs-check: README.md or docs/DEPLOYMENT.md references env var $var which no code references"
      fail=1
    fi
  done
  for var in $(printf '%s\n' "$all_vars" | grep '^TVMCPP_SHM_'); do
    if ! grep -q "\`$var\`" "$deploy"; then
      echo "docs-check: shm transport knob $var is missing from docs/DEPLOYMENT.md"
      fail=1
    fi
  done
fi

if [ "$fail" -eq 0 ]; then
  echo "docs-check: directory map, env-var table, and deployment guide are in sync with the tree"
fi
exit "$fail"
