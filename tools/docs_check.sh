#!/usr/bin/env bash
# docs-check: keeps docs/ARCHITECTURE.md's directory map in sync with src/.
#
# Fails when (a) a src/ subdirectory is missing from the directory map, or (b) the
# map documents a `src/<dir>/` that no longer exists. Registered as the `docs_check`
# CTest so the map cannot silently rot.
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
doc="$root/docs/ARCHITECTURE.md"
fail=0

if [ ! -f "$doc" ]; then
  echo "docs-check: missing $doc"
  exit 1
fi
if [ ! -f "$root/README.md" ]; then
  echo "docs-check: missing top-level README.md"
  exit 1
fi

# Every real src/ subdirectory must appear in the map as `src/<name>/`.
for d in "$root"/src/*/; do
  name="$(basename "$d")"
  if ! grep -q "\`src/$name/\`" "$doc"; then
    echo "docs-check: src/$name/ is missing from the directory map in docs/ARCHITECTURE.md"
    fail=1
  fi
done

# Every documented `src/<name>/` must exist on disk.
for name in $(grep -o '`src/[A-Za-z0-9_]*/`' "$doc" | sed 's/`//g; s|^src/||; s|/$||' | sort -u); do
  if [ ! -d "$root/src/$name" ]; then
    echo "docs-check: docs/ARCHITECTURE.md documents src/$name/ which does not exist"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs-check: directory map is in sync with src/"
fi
exit "$fail"
