#!/usr/bin/env bash
# Fault-injection smoke: runs the full test suite with fail-points armed at
# ~p=0.1 on the compile / run / queue paths and checks that nothing crashes,
# deadlocks, or trips a sanitizer.
#
# Individual test *assertion* failures are tolerated — an injected error
# legitimately changes the outcome a test asserts (a vm::Run that throws
# InjectedFault fails that test's EXPECT, and should). What is NOT tolerated:
#   - crashes:   ctest "***Exception" (SegFault, Abort, ...)
#   - hangs:     ctest "***Timeout" (per-test timeout below)
#   - sanitizer: AddressSanitizer / LeakSanitizer / UBSan reports
# i.e. the robustness claim under test is "an injected fault is always surfaced
# as a structured error, never as memory unsafety, a wedged worker, or a lost
# future".
#
# TVMCPP_FAILPOINTS / TVMCPP_FAILPOINT_SEED are honored if already set, so the
# job can be re-run with a narrower spec to bisect a failure.
#
# Usage: fault_smoke.sh [BUILD_DIR]   (default: build)
set -u

build_dir="${1:-build}"
if [ ! -f "$build_dir/CTestTestfile.cmake" ]; then
  echo "fault_smoke: no ctest suite in '$build_dir' (run cmake/build first)" >&2
  exit 2
fi

spec="${TVMCPP_FAILPOINTS:-serve.run=error(0.1),vm.run=error(0.1),serve.batch_compile=error(0.1),serve.queue_push=error(0.05),pool.dispatch=delay(0.5,0.05)}"
seed="${TVMCPP_FAILPOINT_SEED:-0x5EED}"
echo "fault_smoke: TVMCPP_FAILPOINTS=$spec"
echo "fault_smoke: TVMCPP_FAILPOINT_SEED=$seed"

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
(
  cd "$build_dir" &&
  TVMCPP_FAILPOINTS="$spec" \
  TVMCPP_FAILPOINT_SEED="$seed" \
  ASAN_OPTIONS="abort_on_error=1:detect_leaks=0" \
  ctest --output-on-failure --timeout 300 -j"$(nproc)"
) >"$log" 2>&1
ctest_status=$?

# Show the ctest summary for context (pass/fail counts), then gate.
tail -n 20 "$log"

fatal='\*\*\*Exception|\*\*\*Timeout|ERROR: AddressSanitizer|ERROR: LeakSanitizer|runtime error:'
if grep -E "$fatal" "$log"; then
  echo "FAULT_SMOKE_FAIL: crash, hang, or sanitizer report under injected faults (see above)"
  exit 1
fi
echo "FAULT_SMOKE_OK (ctest exit $ctest_status; assertion failures under injected faults are tolerated)"
